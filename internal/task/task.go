// Package task defines the kernel's view of a thread: the task struct, its
// lifecycle states, the migratable user context, and the shadow/dummy roles
// the paper's migration protocol creates on the source and destination
// kernels.
package task

import "fmt"

// ID is a task (thread) identifier, unique across the whole machine. The
// replicated-kernel OS partitions the PID space so each kernel can allocate
// globally unique IDs without coordination.
type ID int64

// NoTask is the zero, invalid task ID.
const NoTask ID = 0

// State is a task's lifecycle state.
type State int

// Task states.
const (
	StateNew State = iota + 1
	// StateRunnable means queued on a run queue.
	StateRunnable
	// StateRunning means currently on a core.
	StateRunning
	// StateBlocked means waiting on a futex, page fault, or message.
	StateBlocked
	// StateShadow means the task migrated away; this husk remains at its
	// former kernel holding kernel-side resources for back-migration.
	StateShadow
	// StateExited means the thread has terminated.
	StateExited
	// StateLost means the kernel hosting the live thread crashed before it
	// could exit: its execution is gone, but the group accounting completed
	// (join does not wedge on it). Only degradation paths set this.
	StateLost
	// StateRecovered marks a replacement task restarted on a surviving
	// kernel from a lost thread's last migration checkpoint. It stays in
	// this state while the re-execution runs (so the recovery is observable
	// at end of run) and transitions to StateExited through the normal exit
	// path.
	StateRecovered
)

// stateNames is populated once by this literal and only ever read.
//
//popcornvet:allow sharedmut immutable after package init; concurrent reads are safe
var stateNames = map[State]string{
	StateNew:       "new",
	StateRunnable:  "runnable",
	StateRunning:   "running",
	StateBlocked:   "blocked",
	StateShadow:    "shadow",
	StateExited:    "exited",
	StateLost:      "lost",
	StateRecovered: "recovered",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("task.State(%d)", int(s))
}

// Role distinguishes the task structs the migration protocol creates.
type Role int

// Task roles.
const (
	// RoleNormal is an ordinary thread.
	RoleNormal Role = iota + 1
	// RoleShadow is the husk left on the source kernel after migration.
	RoleShadow
	// RoleDummy is the pre-created destination task a migrating context is
	// imported into. Once resumed it becomes RoleNormal.
	RoleDummy
)

// roleNames is populated once by this literal and only ever read.
//
//popcornvet:allow sharedmut immutable after package init; concurrent reads are safe
var roleNames = map[Role]string{
	RoleNormal: "normal",
	RoleShadow: "shadow",
	RoleDummy:  "dummy",
}

func (r Role) String() string {
	if n, ok := roleNames[r]; ok {
		return n
	}
	return fmt.Sprintf("task.Role(%d)", int(r))
}

// Context is the migratable user execution context: what the paper ships in
// a migration message. Sizes follow x86-64: 16 GPRs + instruction and stack
// pointers + flags, XSAVE-style FPU/SSE area, and the TLS base.
type Context struct {
	Regs  [16]uint64
	IP    uint64
	SP    uint64
	Flags uint64
	FPU   [512]byte
	TLS   uint64
}

// Bytes returns the serialised size of the context, used to cost the
// migration message.
func (c *Context) Bytes() int {
	return 16*8 + 3*8 + len(c.FPU) + 8
}

// Task is the kernel-side descriptor for one thread.
type Task struct {
	// ID is the machine-global thread ID.
	ID ID
	// TGID identifies the (distributed) thread group the task belongs to.
	TGID ID
	// Kernel is the kernel instance currently hosting the task.
	Kernel int
	// Origin is the kernel where the thread was created; shadows live there.
	Origin int
	// State is the lifecycle state.
	State State
	// Role distinguishes normal, shadow, and dummy tasks.
	Role Role
	// Ctx is the user execution context (valid while not running).
	Ctx Context
	// MigratedTo records, for a shadow, which kernel the live thread went
	// to. Valid only when Role == RoleShadow.
	MigratedTo int
	// Migrations counts how many times this thread has moved.
	Migrations int
	// Hops lists the kernels this thread left shadows on, in migration
	// order; they are reaped when the thread exits.
	Hops []int
	// PendingSignals holds delivered-but-unconsumed signal numbers, in
	// delivery order. Pending signals migrate with the thread.
	PendingSignals []int
	// Recoverable marks a thread whose origin retains its last migration
	// payload as a checkpoint: if the hosting kernel crashes, the origin may
	// restart the thread (StateRecovered) instead of reaping it as lost.
	// The flag travels with the task across migrations.
	Recoverable bool
}

// New returns a normal task in StateNew.
func New(id, tgid ID, kernel int) *Task {
	return &Task{
		ID:     id,
		TGID:   tgid,
		Kernel: kernel,
		Origin: kernel,
		State:  StateNew,
		Role:   RoleNormal,
	}
}

// Alive reports whether the task represents a live thread on its kernel
// (shadows and exited tasks are not alive).
func (t *Task) Alive() bool {
	return t.State != StateExited && t.Role != RoleShadow
}

func (t *Task) String() string {
	return fmt.Sprintf("task{id=%d tgid=%d kernel=%d %v/%v}", t.ID, t.TGID, t.Kernel, t.Role, t.State)
}
