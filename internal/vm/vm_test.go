package vm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// simpleFrames adapts a raw allocator to FrameSource without lock costs.
type simpleFrames struct{ a *mem.FrameAllocator }

func (f *simpleFrames) AllocFrame(p *sim.Proc) (mem.FrameID, int, error) {
	fr, err := f.a.Alloc()
	return fr, f.a.Node(), err
}

func (f *simpleFrames) FreeFrame(p *sim.Proc, fr mem.FrameID) {
	if err := f.a.Free(fr); err != nil {
		panic(err)
	}
}

// env is a 4-kernel VM test environment over a dual-socket 8-core machine.
type env struct {
	e      sim.Engine
	fabric *msg.Fabric
	svcs   []*Service
	allocs []*mem.FrameAllocator
}

func newEnv(t *testing.T, kernels int, framesPerKernel int, opts ...sim.Option) *env {
	t.Helper()
	e := sim.NewEngine(append([]sim.Option{sim.WithSeed(1)}, opts...)...)
	t.Cleanup(e.Close)
	machine, err := hw.NewMachine(hw.Topology{Cores: 8, NUMANodes: 2}, hw.DefaultCostModel())
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	cores := []int{0, 2, 4, 6}[:kernels]
	fabric, err := msg.NewFabric(e, machine, kernels, cores, msg.DefaultConfig(), stats.NewRegistry())
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	ev := &env{e: e, fabric: fabric}
	for k := 0; k < kernels; k++ {
		alloc, err := mem.NewFrameAllocator(machine.Topology.NodeOf(cores[k]), mem.FrameID(k*1<<20), framesPerKernel)
		if err != nil {
			t.Fatalf("NewFrameAllocator: %v", err)
		}
		ev.allocs = append(ev.allocs, alloc)
		ev.svcs = append(ev.svcs, NewService(e, machine, fabric, msg.NodeID(k), &simpleFrames{a: alloc}, 2, stats.NewRegistry()))
	}
	return ev
}

// group creates a distributed AS with origin kernel 0 and replicas on all
// other kernels, returning the per-kernel spaces.
func (ev *env) group(t *testing.T, gid GID) []*Space {
	t.Helper()
	spaces := make([]*Space, len(ev.svcs))
	sp, err := ev.svcs[0].Create(gid)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	spaces[0] = sp
	for k := 1; k < len(ev.svcs); k++ {
		r, err := ev.svcs[k].Attach(gid, 0)
		if err != nil {
			t.Fatalf("Attach(%d): %v", k, err)
		}
		if err := ev.svcs[0].RegisterReplica(gid, msg.NodeID(k)); err != nil {
			t.Fatalf("RegisterReplica(%d): %v", k, err)
		}
		spaces[k] = r
	}
	return spaces
}

// run executes fn as a simulation process and drains the engine.
func (ev *env) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	ev.e.Spawn("test", fn)
	if err := ev.e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMapLoadStoreAtOrigin(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[0].Map(p, 2*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		if v, err := sps[0].Load(p, 0, addr); err != nil || v != 0 {
			t.Errorf("initial Load = %d, %v; want 0, nil", v, err)
		}
		if err := sps[0].Store(p, 0, addr, 42); err != nil {
			t.Errorf("Store: %v", err)
		}
		if v, _ := sps[0].Load(p, 0, addr); v != 42 {
			t.Errorf("Load after Store = %d, want 42", v)
		}
		// Second page is independent.
		if v, _ := sps[0].Load(p, 0, addr+hw.PageSize); v != 0 {
			t.Errorf("other page = %d, want 0", v)
		}
	})
}

func TestSegvOnUnmapped(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		if _, err := sps[0].Load(p, 0, 0xdead000); !errors.Is(err, ErrSegv) {
			t.Errorf("origin load of unmapped = %v, want ErrSegv", err)
		}
		if _, err := sps[1].Load(p, 2, 0xdead000); !errors.Is(err, ErrSegv) {
			t.Errorf("replica load of unmapped = %v, want ErrSegv", err)
		}
	})
}

func TestWriteToReadOnlyFails(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[0].Map(p, hw.PageSize, mem.ProtRead)
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		if err := sps[0].Store(p, 0, addr, 1); !errors.Is(err, ErrAccess) {
			t.Errorf("origin store to RO = %v, want ErrAccess", err)
		}
		if err := sps[1].Store(p, 2, addr, 1); !errors.Is(err, ErrAccess) {
			t.Errorf("replica store to RO = %v, want ErrAccess", err)
		}
	})
}

func TestReplicaSeesOriginWrites(t *testing.T) {
	ev := newEnv(t, 3, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err := sps[0].Store(p, 0, addr, 77); err != nil {
			t.Fatalf("origin Store: %v", err)
		}
		// Replica 1 reads: requires downgrading origin's modified copy.
		if v, err := sps[1].Load(p, 2, addr); err != nil || v != 77 {
			t.Errorf("replica1 Load = %d, %v; want 77", v, err)
		}
		// Replica 2 reads the now-shared page.
		if v, err := sps[2].Load(p, 4, addr); err != nil || v != 77 {
			t.Errorf("replica2 Load = %d, %v; want 77", v, err)
		}
	})
}

func TestWriteInvalidatesRemoteReaders(t *testing.T) {
	ev := newEnv(t, 3, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		_ = sps[0].Store(p, 0, addr, 1)
		_, _ = sps[1].Load(p, 2, addr)
		_, _ = sps[2].Load(p, 4, addr)
		// Replica 1 writes: replica 2 and origin copies must be revoked.
		if err := sps[1].Store(p, 2, addr, 2); err != nil {
			t.Fatalf("replica1 Store: %v", err)
		}
		if v, err := sps[2].Load(p, 4, addr); err != nil || v != 2 {
			t.Errorf("replica2 Load after remote write = %d, %v; want 2", v, err)
		}
		if v, err := sps[0].Load(p, 0, addr); err != nil || v != 2 {
			t.Errorf("origin Load after remote write = %d, %v; want 2", v, err)
		}
	})
}

func TestWritePingPongBetweenReplicas(t *testing.T) {
	ev := newEnv(t, 3, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		for i := int64(0); i < 10; i++ {
			w := sps[1+int(i)%2]
			if err := w.Store(p, 2, addr, i); err != nil {
				t.Fatalf("Store %d: %v", i, err)
			}
			r := sps[1+int(i+1)%2]
			if v, err := r.Load(p, 4, addr); err != nil || v != i {
				t.Fatalf("Load %d = %d, %v", i, v, err)
			}
		}
	})
}

func TestUnmapPropagatesAndFreesFrames(t *testing.T) {
	ev := newEnv(t, 3, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, 4*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		for i := 0; i < 4; i++ {
			off := mem.Addr(i * hw.PageSize)
			_ = sps[0].Store(p, 0, addr+off, int64(i))
			_, _ = sps[1].Load(p, 2, addr+off)
			_, _ = sps[2].Load(p, 4, addr+off)
		}
		if err := sps[0].Unmap(p, addr, 4*hw.PageSize); err != nil {
			t.Fatalf("Unmap: %v", err)
		}
		for k, sp := range sps {
			if _, err := sp.Load(p, 2*k, addr); !errors.Is(err, ErrSegv) {
				t.Errorf("kernel %d load after unmap = %v, want ErrSegv", k, err)
			}
		}
	})
	for k, a := range ev.allocs {
		if a.InUse() != 0 {
			t.Errorf("kernel %d still holds %d frames after unmap", k, a.InUse())
		}
	}
}

func TestUnmapMiddleSplitsMapping(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, 3*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		_ = sps[0].Store(p, 0, addr, 1)
		_ = sps[0].Store(p, 0, addr+2*hw.PageSize, 3)
		if err := sps[0].Unmap(p, addr+hw.PageSize, hw.PageSize); err != nil {
			t.Fatalf("Unmap: %v", err)
		}
		if v, err := sps[0].Load(p, 0, addr); err != nil || v != 1 {
			t.Errorf("left page = %d, %v", v, err)
		}
		if _, err := sps[0].Load(p, 0, addr+hw.PageSize); !errors.Is(err, ErrSegv) {
			t.Errorf("hole = %v, want ErrSegv", err)
		}
		if v, err := sps[0].Load(p, 0, addr+2*hw.PageSize); err != nil || v != 3 {
			t.Errorf("right page = %d, %v", v, err)
		}
	})
}

func TestProtectPropagates(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		_ = sps[1].Store(p, 2, addr, 5) // replica owns the page exclusively
		if err := sps[0].Protect(p, addr, hw.PageSize, mem.ProtRead); err != nil {
			t.Fatalf("Protect: %v", err)
		}
		if err := sps[1].Store(p, 2, addr, 6); !errors.Is(err, ErrAccess) {
			t.Errorf("replica store after mprotect(RO) = %v, want ErrAccess", err)
		}
		if err := sps[0].Store(p, 0, addr, 6); !errors.Is(err, ErrAccess) {
			t.Errorf("origin store after mprotect(RO) = %v, want ErrAccess", err)
		}
		// Value still readable and intact.
		if v, err := sps[0].Load(p, 0, addr); err != nil || v != 5 {
			t.Errorf("Load after mprotect = %d, %v; want 5", v, err)
		}
		// Restore write and verify stores work again.
		if err := sps[0].Protect(p, addr, hw.PageSize, mem.ProtRead|mem.ProtWrite); err != nil {
			t.Fatalf("Protect back: %v", err)
		}
		if err := sps[1].Store(p, 2, addr, 7); err != nil {
			t.Errorf("store after re-enable = %v", err)
		}
		if v, _ := sps[0].Load(p, 0, addr); v != 7 {
			t.Errorf("value after re-enable = %d, want 7", v)
		}
	})
}

func TestProtectUnmappedRangeFails(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		if err := sps[0].Protect(p, 0x100000, hw.PageSize, mem.ProtRead); err == nil {
			t.Error("mprotect of unmapped range succeeded")
		}
	})
}

func TestRemoteMapFromReplica(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[1].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Fatalf("remote Map: %v", err)
		}
		if err := sps[1].Store(p, 2, addr, 9); err != nil {
			t.Errorf("Store on remotely created mapping: %v", err)
		}
		// Origin can see it too.
		if v, err := sps[0].Load(p, 0, addr); err != nil || v != 9 {
			t.Errorf("origin Load = %d, %v; want 9", v, err)
		}
		// Remote unmap round-trips as well.
		if err := sps[1].Unmap(p, addr, hw.PageSize); err != nil {
			t.Fatalf("remote Unmap: %v", err)
		}
		if _, err := sps[1].Load(p, 2, addr); !errors.Is(err, ErrSegv) {
			t.Errorf("load after remote unmap = %v", err)
		}
	})
}

func TestBadRangesRejected(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		if _, err := sps[0].Map(p, 0, mem.ProtRead); !errors.Is(err, ErrBadRange) {
			t.Errorf("zero-length map = %v", err)
		}
		if err := sps[0].Unmap(p, 123, hw.PageSize); !errors.Is(err, ErrBadRange) {
			t.Errorf("unaligned unmap = %v", err)
		}
		if err := sps[0].Protect(p, 123, hw.PageSize, mem.ProtRead); !errors.Is(err, ErrBadRange) {
			t.Errorf("unaligned protect = %v", err)
		}
	})
}

func TestFrameExhaustion(t *testing.T) {
	ev := newEnv(t, 1, 2)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, 4*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		for i := 0; i < 2; i++ {
			if err := sps[0].Store(p, 0, addr+mem.Addr(i*hw.PageSize), 1); err != nil {
				t.Fatalf("Store %d: %v", i, err)
			}
		}
		if err := sps[0].Store(p, 0, addr+2*hw.PageSize, 1); !errors.Is(err, ErrNoSpace) {
			t.Errorf("store past capacity = %v, want ErrNoSpace", err)
		}
	})
}

func TestRemoteFaultSlowerThanLocal(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	var local, remote time.Duration
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, 2*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		start := p.Now()
		_ = sps[0].Store(p, 0, addr, 1)
		local = p.Now().Sub(start)
		start = p.Now()
		_ = sps[1].Store(p, 2, addr+hw.PageSize, 1)
		remote = p.Now().Sub(start)
	})
	if remote <= local {
		t.Fatalf("remote first-touch %v not slower than local %v", remote, local)
	}
}

func TestVMACacheAvoidsRepeatFetch(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, 8*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		for i := 0; i < 8; i++ {
			if err := sps[1].Store(p, 2, addr+mem.Addr(i*hw.PageSize), 1); err != nil {
				t.Fatalf("Store: %v", err)
			}
		}
	})
	fetches := ev.svcs[1].metrics.Counter("vm.vmafetch").Value()
	if fetches > 1 {
		t.Fatalf("replica issued %d VMA fetches for one area, want <= 1", fetches)
	}
}

func TestConcurrentFaultsCoalesceLocally(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	var addr mem.Addr
	ev.e.Spawn("setup", func(p *sim.Proc) {
		addr, _ = sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		for i := 0; i < 4; i++ {
			ev.e.Spawn("reader", func(rp *sim.Proc) {
				if v, err := sps[1].Load(rp, 2, addr); err != nil || v != 0 {
					t.Errorf("Load = %d, %v", v, err)
				}
			})
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := ev.svcs[1].metrics.Counter("vm.fault.coalesced").Value(); got == 0 {
		t.Error("concurrent faults did not coalesce")
	}
	if got := ev.svcs[1].metrics.Counter("vm.fault.remote").Value(); got != 1 {
		t.Errorf("remote faults = %d, want 1 (coalesced)", got)
	}
}

func TestDropFreesFrames(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, 4*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		for i := 0; i < 4; i++ {
			_ = sps[1].Store(p, 2, addr+mem.Addr(i*hw.PageSize), 1)
		}
		ev.svcs[1].Drop(p, 1)
	})
	if got := ev.allocs[1].InUse(); got != 0 {
		t.Fatalf("replica still holds %d frames after Drop", got)
	}
	if _, ok := ev.svcs[1].Space(1); ok {
		t.Fatal("space still attached after Drop")
	}
}

func TestServiceValidation(t *testing.T) {
	ev := newEnv(t, 2, 8)
	if _, err := ev.svcs[0].Create(5); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := ev.svcs[0].Create(5); err == nil {
		t.Error("duplicate Create accepted")
	}
	if _, err := ev.svcs[0].Attach(6, 0); err == nil {
		t.Error("Attach with self origin accepted")
	}
	if _, err := ev.svcs[1].Attach(5, 0); err != nil {
		t.Errorf("Attach: %v", err)
	}
	if _, err := ev.svcs[1].Attach(5, 0); err == nil {
		t.Error("duplicate Attach accepted")
	}
	if err := ev.svcs[1].RegisterReplica(5, 1); err == nil {
		t.Error("RegisterReplica on non-origin accepted")
	}
}
