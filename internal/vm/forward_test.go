package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

// enableForwarding turns the D5 mode on for every non-origin kernel.
func enableForwarding(ev *env) {
	for k := 1; k < len(ev.svcs); k++ {
		ev.svcs[k].SetWriteForwarding(true)
	}
}

func TestWriteForwardingBasicCoherence(t *testing.T) {
	ev := newEnv(t, 3, 64)
	sps := ev.group(t, 1)
	enableForwarding(ev)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		// Remote write forwards to the origin...
		if err := sps[1].Store(p, 2, addr, 7); err != nil {
			t.Fatalf("forwarded Store: %v", err)
		}
		// ...and is visible everywhere.
		for k := 0; k < 3; k++ {
			if v, err := sps[k].Load(p, 2*k, addr); err != nil || v != 7 {
				t.Fatalf("kernel %d Load = %d, %v; want 7", k, v, err)
			}
		}
		// The writing kernel must NOT have taken ownership: the origin
		// still writes locally without any invalidation round trip.
		before := ev.svcs[0].metrics.Counter("vm.inval.sent").Value()
		if err := sps[0].Store(p, 0, addr, 8); err != nil {
			t.Fatalf("origin Store: %v", err)
		}
		_ = before // sharers exist from the loads; invals may legitimately occur
		if got := ev.svcs[1].metrics.Counter("vm.write.forwarded").Value(); got != 1 {
			t.Fatalf("forwarded writes = %d, want 1", got)
		}
	})
}

func TestWriteForwardingAtomicsAcrossKernels(t *testing.T) {
	ev := newEnv(t, 4, 64)
	sps := ev.group(t, 1)
	enableForwarding(ev)
	wg := sim.NewWaitGroup()
	wg.Add(4)
	ev.e.Spawn("driver", func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		for k := 0; k < 4; k++ {
			k := k
			ev.e.Spawn("adder", func(ap *sim.Proc) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					if _, err := sps[k].FetchAdd(ap, 2*k, addr, 1); err != nil {
						t.Errorf("kernel %d FetchAdd: %v", k, err)
						return
					}
				}
			})
		}
		wg.Wait(p)
		if v, _ := sps[0].Load(p, 0, addr); v != 100 {
			t.Errorf("counter = %d, want 100", v)
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWriteForwardingCASSemantics(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	enableForwarding(ev)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		swapped, err := sps[1].CompareAndSwap(p, 2, addr, 0, 5)
		if err != nil || !swapped {
			t.Fatalf("forwarded CAS(0->5) = %v, %v", swapped, err)
		}
		swapped, err = sps[1].CompareAndSwap(p, 2, addr, 0, 9)
		if err != nil || swapped {
			t.Fatalf("forwarded CAS with wrong old = %v, %v; want false", swapped, err)
		}
		if v, _ := sps[0].Load(p, 0, addr); v != 5 {
			t.Fatalf("value = %d, want 5", v)
		}
	})
}

func TestWriteForwardingErrors(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	enableForwarding(ev)
	ev.run(t, func(p *sim.Proc) {
		if err := sps[1].Store(p, 2, 0xdead000, 1); err == nil {
			t.Fatal("forwarded store to unmapped succeeded")
		}
		roAddr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead)
		if err := sps[1].Store(p, 2, roAddr, 1); err == nil {
			t.Fatal("forwarded store to read-only succeeded")
		}
	})
}

func TestWriteForwardingReadsStillReplicate(t *testing.T) {
	// Reads keep using MSI shared grants in forwarding mode: the second
	// read from the same kernel must be a local hit.
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	enableForwarding(ev)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		_ = sps[0].Store(p, 0, addr, 3)
		if v, err := sps[1].Load(p, 2, addr); err != nil || v != 3 {
			t.Fatalf("first read = %d, %v", v, err)
		}
		faultsBefore := ev.svcs[1].metrics.Counter("vm.fault.remote").Value()
		if v, _ := sps[1].Load(p, 2, addr); v != 3 {
			t.Fatalf("second read = %d", v)
		}
		if got := ev.svcs[1].metrics.Counter("vm.fault.remote").Value(); got != faultsBefore {
			t.Fatalf("second read faulted remotely (%d -> %d)", faultsBefore, got)
		}
	})
}

func TestPrefetchBatchesOneRoundTrip(t *testing.T) {
	ev := newEnv(t, 2, 128)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, 16*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		for i := 0; i < 16; i++ {
			_ = sps[0].Store(p, 0, addr+mem.Addr(i*hw.PageSize), int64(100+i))
		}
		rpcsBefore := ev.fabric.Metrics().Counter("msg.rpc").Value()
		n, err := sps[1].Prefetch(p, 2, addr, 16)
		if err != nil {
			t.Fatalf("Prefetch: %v", err)
		}
		if n != 16 {
			t.Fatalf("installed %d pages, want 16", n)
		}
		rpcs := ev.fabric.Metrics().Counter("msg.rpc").Value() - rpcsBefore
		if rpcs > 17 {
			// One batch fetch plus the owner revocations at the origin.
			t.Fatalf("prefetch used %d RPCs", rpcs)
		}
		// All pages now local read copies: loads take no remote faults.
		faultsBefore := ev.svcs[1].metrics.Counter("vm.fault.remote").Value()
		for i := 0; i < 16; i++ {
			v, err := sps[1].Load(p, 2, addr+mem.Addr(i*hw.PageSize))
			if err != nil || v != int64(100+i) {
				t.Fatalf("Load %d = %d, %v", i, v, err)
			}
		}
		if got := ev.svcs[1].metrics.Counter("vm.fault.remote").Value(); got != faultsBefore {
			t.Fatalf("loads after prefetch still faulted remotely")
		}
	})
}

func TestPrefetchFasterThanDemandFaulting(t *testing.T) {
	elapsed := func(prefetch bool) sim.Time {
		ev := newEnv(t, 2, 128)
		sps := ev.group(t, 1)
		var done sim.Time
		ev.run(t, func(p *sim.Proc) {
			addr, _ := sps[0].Map(p, 32*hw.PageSize, mem.ProtRead|mem.ProtWrite)
			for i := 0; i < 32; i++ {
				_ = sps[0].Store(p, 0, addr+mem.Addr(i*hw.PageSize), 1)
			}
			start := p.Now()
			if prefetch {
				if _, err := sps[1].Prefetch(p, 2, addr, 32); err != nil {
					t.Fatalf("Prefetch: %v", err)
				}
			}
			for i := 0; i < 32; i++ {
				if _, err := sps[1].Load(p, 2, addr+mem.Addr(i*hw.PageSize)); err != nil {
					t.Fatalf("Load: %v", err)
				}
			}
			done = sim.Time(p.Now().Sub(start))
		})
		return done
	}
	demand, batched := elapsed(false), elapsed(true)
	if batched >= demand {
		t.Fatalf("prefetch (%v) not faster than demand faulting (%v)", batched, demand)
	}
}

func TestPrefetchSkipsResidentAndUnmapped(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, 2*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		// Make page 0 already resident at the replica.
		_, _ = sps[1].Load(p, 2, addr)
		// Prefetch across the mapping edge: page 1 granted, pages 2-3
		// unmapped and skipped.
		n, err := sps[1].Prefetch(p, 2, addr, 4)
		if err != nil {
			t.Fatalf("Prefetch: %v", err)
		}
		if n != 1 {
			t.Fatalf("installed %d, want 1 (page 0 resident, 2-3 unmapped)", n)
		}
		if n, err := sps[1].Prefetch(p, 2, addr, 0); err != nil || n != 0 {
			t.Fatalf("zero-page prefetch = %d, %v", n, err)
		}
	})
}
