package vm

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// accessOp describes one memory access: a plain load, a plain store, or an
// atomic read-modify-write (rmw non-nil implies exclusive ownership; the
// function maps the old value to the new one and whether to write it).
type accessOp struct {
	write bool
	val   int64
	rmw   func(old int64) (int64, bool)
	// fwdCode/fwdVal/fwdOld describe the operation for write forwarding
	// (rmw closures cannot cross the wire).
	fwdCode int
	fwdVal  int64
	fwdOld  int64
}

func (op accessOp) needsWrite() bool { return op.write || op.rmw != nil }

// Load reads the word at addr from a thread running on the given core of
// this kernel, resolving faults through the consistency protocol as needed.
func (sp *Space) Load(p *sim.Proc, core int, addr mem.Addr) (int64, error) {
	return sp.access(p, core, addr, accessOp{})
}

// Store writes val to addr from a thread running on the given core of this
// kernel, acquiring exclusive page ownership as needed.
func (sp *Space) Store(p *sim.Proc, core int, addr mem.Addr, val int64) error {
	_, err := sp.access(p, core, addr, accessOp{write: true, val: val})
	return err
}

// CompareAndSwap atomically replaces the word at addr with new if it equals
// old, reporting whether the swap happened. The page is brought in
// exclusively either way, as a hardware CAS would.
func (sp *Space) CompareAndSwap(p *sim.Proc, core int, addr mem.Addr, old, new int64) (bool, error) {
	swapped := false
	observed, err := sp.access(p, core, addr, accessOp{
		fwdCode: fwdCAS, fwdVal: new, fwdOld: old,
		rmw: func(cur int64) (int64, bool) {
			if cur == old {
				swapped = true
				return new, true
			}
			return 0, false
		}})
	if err != nil {
		return false, err
	}
	if sp.svc.writeForwarding && !sp.isOrigin {
		_ = observed
		return sp.lastForwardSwap, nil
	}
	return swapped, err
}

// FetchAdd atomically adds delta to the word at addr and returns the
// previous value.
func (sp *Space) FetchAdd(p *sim.Proc, core int, addr mem.Addr, delta int64) (int64, error) {
	return sp.access(p, core, addr, accessOp{
		fwdCode: fwdFetchAdd, fwdVal: delta,
		rmw: func(cur int64) (int64, bool) {
			return cur + delta, true
		}})
}

// Touch is a Load (write=false) or a FetchAdd of zero (write=true) that
// discards the value; convenient for fault benchmarks.
func (sp *Space) Touch(p *sim.Proc, core int, addr mem.Addr, write bool) error {
	if write {
		_, err := sp.FetchAdd(p, core, addr, 0)
		return err
	}
	_, err := sp.access(p, core, addr, accessOp{})
	return err
}

// maxFaultRetries bounds fault retry loops; a page ping-ponging this many
// times in one access indicates a protocol bug, not workload behaviour.
const maxFaultRetries = 64

// failoverRetryDelay paces fault retries against a dead origin while the
// failover plane promotes its successor. Declared-dead fast-fails consume
// no virtual time, so without pacing the retry budget would burn out at one
// instant; with it, maxFaultRetries spans comfortably more than the
// detection-plus-handover window, and the retried fault lands on the
// promoted origin once the handover announcement re-points sp.origin.
const failoverRetryDelay = 200 * time.Microsecond

// retryFailover reports whether a fault-path error should be retried
// because the group's origin died while the failover plane is on; it
// sleeps the pacing delay before returning true.
func (sp *Space) retryFailover(p *sim.Proc, err error) bool {
	if !sp.svc.failover || !msg.IsDeadPeer(err) {
		return false
	}
	sp.svc.metrics.Counter("vm.fault.failover_retry").Inc()
	p.Sleep(failoverRetryDelay)
	return true
}

func (sp *Space) access(p *sim.Proc, core int, addr mem.Addr, op accessOp) (int64, error) {
	vpn := mem.PageOf(addr)
	write := op.needsWrite()
	if write && sp.svc.writeForwarding && !sp.isOrigin {
		return sp.forwardWrite(p, addr, op)
	}
	noCopy := false
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		vma, err := sp.lookupVMA(p, vpn)
		if err != nil {
			if sp.retryFailover(p, err) {
				continue
			}
			return 0, err
		}
		if write && !vma.Prot.Writable() {
			return 0, fmt.Errorf("%w: write to %v page %#x", ErrAccess, vma.Prot, uint64(addr))
		}
		if !write && !vma.Prot.Readable() {
			return 0, fmt.Errorf("%w: read of %v page %#x", ErrAccess, vma.Prot, uint64(addr))
		}
		// Fast path: a sufficient PTE means the hardware walk succeeds.
		// The value mutation happens atomically at the check (before any
		// blocking), matching TLB-shootdown semantics: once an
		// invalidation has been acknowledged, no core can still land a
		// write through the revoked mapping.
		if pte, ok := sp.pt.Lookup(vpn); ok {
			sufficient := pte.Prot.Readable() && (!write || pte.Prot.Writable())
			if sufficient {
				res := sp.performAccess(p, vpn, op)
				p.Sleep(sp.svc.machine.MemAccess(core, pte.HomeNode))
				return res.value, nil
			}
		}
		// Page fault.
		p.Sleep(sp.svc.machine.Cost.PageFaultTrap)
		faultStart := p.Now()
		if pend, ok := sp.pending[vpn]; ok {
			// Another local thread is resolving this page: coalesce.
			sp.svc.metrics.Counter("vm.fault.coalesced").Inc()
			pend.done.Wait(p)
			continue
		}
		pend := &pendingFault{done: sim.NewCond()}
		sp.pending[vpn] = pend
		// The vm.fault span covers this kernel's fault resolution: the
		// directory transaction (local) or the PageFetch round trip (remote)
		// plus installing the grant. The trap cost and coalesced waits stay
		// outside it — they are the *caller's* time, not the protocol's.
		var faultScope trace.Scope
		if col := sp.svc.ep.Collector(); col != nil {
			faultScope = col.Begin(p, "vm.fault", int(sp.svc.node))
		}
		res, err := sp.resolveFault(p, vpn, op, pend, noCopy)
		faultScope.End()
		delete(sp.pending, vpn)
		pend.done.Broadcast()
		if err != nil {
			// An origin that died mid-fault is retried (paced) when failover
			// is on: the successor promotes itself and the handover
			// announcement re-points this replica at it.
			if sp.retryFailover(p, err) {
				continue
			}
			return 0, err
		}
		if sp.isOrigin {
			sp.svc.metrics.Histogram("vm.fault.latency.local").Observe(p.Now().Sub(faultStart))
		} else {
			sp.svc.metrics.Histogram("vm.fault.latency.remote").Observe(p.Now().Sub(faultStart))
		}
		if res.completed {
			// The faulting access was performed atomically at install
			// time (the analogue of the CPU retrying the instruction
			// before the next shootdown IPI lands), so progress is
			// guaranteed even under heavy write contention.
			return res.value, nil
		}
		if res.lostCopy {
			sp.svc.metrics.Counter("vm.fault.desync").Inc()
			noCopy = true
		}
		sp.svc.metrics.Counter("vm.fault.retried").Inc()
		// A racing invalidation or layout change voided the grant; redo
		// the walk from the top.
	}
	return 0, fmt.Errorf("vm: access to %#x did not settle after %d fault retries", uint64(addr), maxFaultRetries)
}

// accessResult is the outcome of a fault resolution: completed means the
// faulting access itself was performed during installation; lostCopy means
// the grant assumed this kernel still held a copy that its page table does
// not have, so the retry must disclaim it to the directory.
type accessResult struct {
	value     int64
	completed bool
	lostCopy  bool
}

// lookupVMA finds the VMA covering the page, consulting the origin on a
// replica cache miss.
func (sp *Space) lookupVMA(p *sim.Proc, vpn mem.VPN) (VMA, error) {
	if v, ok := sp.vmas.find(vpn); ok {
		return v, nil
	}
	if sp.isOrigin {
		return VMA{}, fmt.Errorf("%w: page %#x", ErrSegv, uint64(vpn.Base()))
	}
	sp.svc.metrics.Counter("vm.vmafetch").Inc()
	reply, err := sp.svc.ep.Call(p, &msg.Message{
		Type: msg.TypeVMAFetch, To: sp.origin, Size: sizeSmallReq,
		Payload: &vmaFetchReq{GID: sp.gid, VPN: vpn},
	})
	if err != nil {
		return VMA{}, err
	}
	r := reply.Payload.(*vmaFetchReply)
	if !r.OK {
		return VMA{}, fmt.Errorf("%w: page %#x", ErrSegv, uint64(vpn.Base()))
	}
	sp.cacheVMA(r.VMA, r.Version)
	return r.VMA, nil
}

// resolveFault obtains access to the page from the directory (locally at
// the origin, over a PageFetch RPC elsewhere) and installs the result,
// performing the faulting access atomically with the installation unless a
// racing invalidation voided the grant.
func (sp *Space) resolveFault(p *sim.Proc, vpn mem.VPN, op accessOp, pend *pendingFault, noCopy bool) (accessResult, error) {
	write := op.needsWrite()
	var grant *pageGrant
	if sp.isOrigin {
		sp.svc.metrics.Counter("vm.fault.local").Inc()
		sp.asLock.RLock(p)
		//popcornvet:allow locksend the shared asLock orders this fault against concurrent VMA updates; the revocation handlers it can trigger touch only remote page tables and never take the origin asLock
		g, err := sp.dirTransaction(p, sp.svc.node, vpn, write, noCopy)
		sp.asLock.RUnlock(p)
		if err != nil {
			return accessResult{}, err
		}
		grant = g
	} else {
		sp.svc.metrics.Counter("vm.fault.remote").Inc()
		reply, err := sp.svc.ep.Call(p, &msg.Message{
			Type: msg.TypePageFetch, To: sp.origin, Size: sizeSmallReq,
			Payload: &pageFetchReq{GID: sp.gid, VPN: vpn, Write: write, NoCopy: noCopy},
		})
		if err != nil {
			return accessResult{}, err
		}
		grant = reply.Payload.(*pageGrant)
	}
	if grant.Err != "" {
		switch grant.Code {
		case codeSegv:
			return accessResult{}, fmt.Errorf("%w: %s", ErrSegv, grant.Err)
		case codeAccess:
			return accessResult{}, fmt.Errorf("%w: %s", ErrAccess, grant.Err)
		default:
			return accessResult{}, fmt.Errorf("vm: page fetch %#x: %s", uint64(vpn.Base()), grant.Err)
		}
	}
	// Everything the wire delivered to this kernel before the grant is
	// already processed (per-pair FIFO), so any invalidation marks so far
	// predate the grant and are consistent with its view: clear them. Under
	// a fault plan FIFO no longer holds — a delayed grant reply can be
	// overtaken by the invalidation that revokes it — so order them by
	// directory version instead: a grant whose transaction postdates every
	// revocation observed during the fault is fresh and may install; an
	// older grant was genuinely overtaken, so keep the mark and let the
	// access loop retry with a fresh fetch. (Under FIFO the grant's version
	// always exceeds any prior invalidation's, so faults-off behaviour is
	// unchanged; layout scrubs pin invalVersion to ^uint64(0) because they
	// void any grant.)
	if sp.svc.ep.Ordered() || grant.Version > pend.invalVersion {
		pend.invalidated = false
	}
	return sp.install(p, vpn, grant, pend, op)
}

// install materialises a grant and performs the faulting access. The state
// mutation and the access happen atomically at the invalidation check (no
// blocking in between); the hardware costs are charged afterwards. This
// guarantees that a granted fault makes progress: the access linearises
// before any later revocation, which will then simply write the new
// contents back.
func (sp *Space) install(p *sim.Proc, vpn mem.VPN, g *pageGrant, pend *pendingFault, op accessOp) (accessResult, error) {
	if g.Src == srcHaveCopy {
		if pend.invalidated {
			return accessResult{}, nil
		}
		pte, ok := sp.pt.Lookup(vpn)
		if !ok {
			// The directory believes this kernel holds a copy, but the page
			// table disagrees: either a racing reclaim (the retry resolves
			// it) or the directory is genuinely ahead — an abandoned
			// prefetch or a failed install recorded a sharer that never
			// materialised. The retry disclaims the copy so the origin
			// repairs its entry and transfers the data; without that the
			// access loop would redraw this same grant forever.
			return accessResult{lostCopy: true}, nil
		}
		pte.Prot = g.Prot
		sp.pt.Set(vpn, pte)
		res := sp.performAccess(p, vpn, op)
		p.Sleep(sp.svc.machine.Cost.PTESet)
		return res, nil
	}
	// The allocation may block on the kernel's frame lock; it happens
	// before the final check so the check-and-mutate below stays atomic.
	frame, home, err := sp.svc.frames.AllocFrame(p)
	if err != nil {
		sp.svc.metrics.Counter("vm.fault.enomem").Inc()
		return accessResult{}, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	if pend.invalidated {
		sp.svc.frames.FreeFrame(p, frame)
		return accessResult{}, nil
	}
	if g.Src == srcZeroFill {
		sp.svc.metrics.Counter("vm.page.zerofill").Inc()
	} else {
		sp.svc.metrics.Counter("vm.page.transfer").Inc()
	}
	sp.pt.Set(vpn, mem.PTE{Frame: frame, Prot: g.Prot, HomeNode: home})
	sp.values[vpn] = g.Value
	res := sp.performAccess(p, vpn, op)
	p.Sleep(sp.svc.machine.Cost.PageCopyLocal + sp.svc.machine.Cost.PTESet)
	return res, nil
}

// performAccess applies the load, store or read-modify-write against the
// local copy. It must be called with no intervening blocking after the
// sufficiency check or installation: this is the access's linearisation
// point, which is also where the sanitizer checks it.
func (sp *Space) performAccess(p *sim.Proc, vpn mem.VPN, op accessOp) accessResult {
	switch {
	case op.rmw != nil:
		old := sp.values[vpn]
		next, doWrite := op.rmw(old)
		if doWrite {
			sp.values[vpn] = next
		}
		sp.svc.checker.AccessRMW(p, sp.svc.node, int64(sp.gid), vpn, old, next, doWrite)
		return accessResult{value: old, completed: true}
	case op.write:
		sp.values[vpn] = op.val
		sp.svc.checker.AccessWrite(p, sp.svc.node, int64(sp.gid), vpn, op.val)
		return accessResult{value: op.val, completed: true}
	default:
		v := sp.values[vpn]
		sp.svc.checker.AccessRead(p, sp.svc.node, int64(sp.gid), vpn, v)
		return accessResult{value: v, completed: true}
	}
}

// forwardWrite ships a write-class operation to the origin (the D5
// ablation): the origin performs the access against its own copy — which
// revokes any conflicting replicas through the ordinary directory path —
// and returns the result. No ownership ever moves to this kernel.
func (sp *Space) forwardWrite(p *sim.Proc, addr mem.Addr, op accessOp) (int64, error) {
	req := &pageFetchReq{GID: sp.gid, VPN: mem.PageOf(addr), Write: true, Addr: addr, Val: op.val}
	switch {
	case op.fwdCode != fwdNone:
		req.Forward = op.fwdCode
		req.Val = op.fwdVal
		req.Old = op.fwdOld
	default:
		req.Forward = fwdStore
	}
	sp.svc.metrics.Counter("vm.write.forwarded").Inc()
	reply, err := sp.svc.ep.Call(p, &msg.Message{
		Type: msg.TypePageFetch, To: sp.origin, Size: sizeSmallReq, Payload: req,
	})
	if err != nil {
		return 0, err
	}
	grant := reply.Payload.(*pageGrant)
	if grant.Err != "" {
		switch grant.Code {
		case codeSegv:
			return 0, fmt.Errorf("%w: %s", ErrSegv, grant.Err)
		case codeAccess:
			return 0, fmt.Errorf("%w: %s", ErrAccess, grant.Err)
		default:
			return 0, fmt.Errorf("vm: forwarded write: %s", grant.Err)
		}
	}
	sp.lastForwardSwap = grant.Swapped
	return grant.Value, nil
}

// applyForwarded executes a forwarded operation locally at the origin.
func (sp *Space) applyForwarded(p *sim.Proc, req *pageFetchReq) (int64, error) {
	core := sp.svc.homeCoreHint()
	switch req.Forward {
	case fwdStore:
		err := sp.Store(p, core, req.Addr, req.Val)
		return req.Val, err
	case fwdCAS:
		swapped, err := sp.CompareAndSwap(p, core, req.Addr, req.Old, req.Val)
		if err != nil {
			return 0, err
		}
		sp.lastApplySwap = swapped
		if swapped {
			return req.Old, nil
		}
		v, err := sp.Load(p, core, req.Addr)
		return v, err
	case fwdFetchAdd:
		return sp.FetchAdd(p, core, req.Addr, req.Val)
	}
	return 0, fmt.Errorf("vm: unknown forwarded op %d", req.Forward)
}

// Whereis reports which kernel currently holds the page containing addr:
// the exclusive owner, the first sharer, or the origin for untouched pages.
// It is the query behind the runtime's follow-the-data migration hint.
func (sp *Space) Whereis(p *sim.Proc, addr mem.Addr) (msg.NodeID, error) {
	vpn := mem.PageOf(addr)
	if sp.isOrigin {
		return sp.ownerOf(vpn), nil
	}
	reply, err := sp.svc.ep.Call(p, &msg.Message{
		Type: msg.TypeVMAFetch, To: sp.origin, Size: sizeSmallReq,
		Payload: &vmaFetchReq{GID: sp.gid, VPN: vpn, WantOwner: true},
	})
	if err != nil {
		return 0, err
	}
	r := reply.Payload.(*vmaFetchReply)
	if !r.OK {
		return 0, fmt.Errorf("%w: page %#x", ErrSegv, uint64(vpn.Base()))
	}
	return r.Owner, nil
}

// ownerOf resolves the directory's notion of where a page's data lives.
// Runs at the origin.
func (sp *Space) ownerOf(vpn mem.VPN) msg.NodeID {
	de, ok := sp.dir[vpn]
	if !ok {
		return sp.origin
	}
	switch de.state {
	case pageModified:
		return de.owner
	case pageShared:
		best := sp.origin
		first := true
		for n := range de.sharers {
			if first || n < best {
				best, first = n, false
			}
		}
		return best
	}
	return sp.origin
}

// Prefetch brings up to `pages` consecutive pages starting at addr into
// this kernel as read copies using a single batched round trip to the
// origin — the madvise(WILLNEED) analogue for the distributed address
// space. Pages that are already resident, pending, or unmapped are
// skipped; the call is advisory and never fails the caller for per-page
// conditions. It returns how many pages were installed.
func (sp *Space) Prefetch(p *sim.Proc, core int, addr mem.Addr, pages int) (int, error) {
	if pages <= 0 {
		return 0, nil
	}
	first := mem.PageOf(addr)
	if sp.isOrigin {
		// At the origin every fetch is local, but pages owned elsewhere
		// each cost an owner round trip — overlap them.
		n := 0
		wg := sim.NewWaitGroup()
		for i := 0; i < pages; i++ {
			vpn := first + mem.VPN(i)
			if _, ok := sp.pt.Lookup(vpn); ok {
				continue
			}
			wg.Add(1)
			parentSpan := p.Span()
			sp.svc.e.Spawn("vm-prefetch", func(fp *sim.Proc) {
				defer wg.Done()
				fp.SetSpan(parentSpan)
				if _, err := sp.access(fp, core, vpn.Base(), accessOp{}); err == nil {
					n++
				}
			})
		}
		wg.Wait(p)
		return n, nil
	}
	if sp.svc.ep.PeerHealth(sp.origin) == msg.PeerSlow {
		// The gray detector marked the origin link sick: speculative batch
		// fetches are exactly the load a degraded link cannot absorb, and
		// demand faults will still get through on their own. Advisory call,
		// advisory shed — the caller just runs without the warm cache.
		sp.svc.metrics.Counter("vm.prefetch.shed").Inc()
		return 0, nil
	}
	// Register pendings for the pages we will request so concurrent
	// faults coalesce and racing invalidations void individual entries.
	type slot struct {
		vpn  mem.VPN
		pend *pendingFault
	}
	var want []slot
	for i := 0; i < pages; i++ {
		vpn := first + mem.VPN(i)
		_, resident := sp.pt.Lookup(vpn)
		_, busy := sp.pending[vpn]
		if resident || busy {
			// The batch request is a contiguous (VPN, Count) range and the
			// origin records a sharer for every page it grants, so a hole —
			// a page this kernel will not install — would leave the
			// directory ahead of the page table. End the batch at the first
			// hole instead of spanning it; later pages stay demand-faulted.
			if len(want) > 0 {
				break
			}
			continue
		}
		pend := &pendingFault{done: sim.NewCond()}
		sp.pending[vpn] = pend
		want = append(want, slot{vpn: vpn, pend: pend})
	}
	if len(want) == 0 {
		return 0, nil
	}
	finish := func() {
		for _, s := range want {
			delete(sp.pending, s.vpn)
			s.pend.done.Broadcast()
		}
	}
	sp.svc.metrics.Counter("vm.prefetch").Inc()
	count := int(want[len(want)-1].vpn-want[0].vpn) + 1
	reply, err := sp.svc.ep.Call(p, &msg.Message{
		Type: msg.TypePageFetch, To: sp.origin, Size: sizeSmallReq,
		Payload: &pageFetchReq{GID: sp.gid, VPN: want[0].vpn, Count: count},
	})
	if err != nil {
		finish()
		if msg.IsBackpressure(err) {
			// Prefetch is advisory: under overload it is the first load to
			// shed, not an error the caller should see.
			sp.svc.metrics.Counter("vm.prefetch.shed").Inc()
			return 0, nil
		}
		return 0, err
	}
	grant := reply.Payload.(*pageGrant)
	if grant.Err != "" {
		finish()
		return 0, fmt.Errorf("vm: prefetch: %s", grant.Err)
	}
	installed := 0
	for _, s := range want {
		idx := int(s.vpn - want[0].vpn)
		if idx >= len(grant.Batch) {
			break
		}
		be := grant.Batch[idx]
		if be.Code != codeOK || s.pend.invalidated {
			continue
		}
		frame, home, err := sp.svc.frames.AllocFrame(p)
		if err != nil {
			break
		}
		if s.pend.invalidated {
			sp.svc.frames.FreeFrame(p, frame)
			continue
		}
		sp.pt.Set(s.vpn, mem.PTE{Frame: frame, Prot: be.Prot, HomeNode: home})
		sp.values[s.vpn] = be.Value
		installed++
	}
	// Charge the fills once, overlapping the copies as hardware would.
	if installed > 0 {
		p.Sleep(time.Duration(installed) * (sp.svc.machine.Cost.PageCopyLocal + sp.svc.machine.Cost.PTESet))
		sp.svc.metrics.Counter("vm.prefetch.pages").Add(uint64(installed))
	}
	finish()
	return installed, nil
}

// batchTransactions serves a prefetch at the origin: read transactions for
// every page in the range run concurrently (their owner revocations
// overlap), collected into one grant. The caller holds the address-space
// lock shared for the whole batch.
func (sp *Space) batchTransactions(p *sim.Proc, req msg.NodeID, first mem.VPN, count int) *pageGrant {
	//popcornvet:allow dirver the batch envelope carries no page itself; the requester installs entries under the asLock held across the whole prefetch, which orders them against every concurrent directory transaction
	out := &pageGrant{Batch: make([]batchEntry, count)}
	wg := sim.NewWaitGroup()
	parentSpan := p.Span()
	for i := 0; i < count; i++ {
		i := i
		wg.Add(1)
		sp.svc.e.Spawn("vm-batch", func(bp *sim.Proc) {
			defer wg.Done()
			bp.SetSpan(parentSpan)
			g, err := sp.dirTransaction(bp, req, first+mem.VPN(i), false, false)
			if err != nil {
				out.Batch[i] = batchEntry{Code: codeOther}
				return
			}
			if g.Err != "" {
				out.Batch[i] = batchEntry{Code: g.Code}
				return
			}
			out.Batch[i] = batchEntry{Code: codeOK, Value: g.Value, Src: g.Src, Prot: g.Prot}
		})
	}
	wg.Wait(p)
	return out
}
