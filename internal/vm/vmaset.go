package vm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
)

// VMA is one virtual memory area: a page-aligned, half-open range with
// uniform protection.
type VMA struct {
	Lo   mem.VPN  // first page
	Hi   mem.VPN  // one past the last page
	Prot mem.Prot // uniform protection for the whole range
}

// Pages returns the number of pages the VMA covers.
func (v VMA) Pages() int { return int(v.Hi - v.Lo) }

// Contains reports whether the page lies inside the VMA.
func (v VMA) Contains(p mem.VPN) bool { return p >= v.Lo && p < v.Hi }

// String renders the VMA as "[lo,hi) prot" with byte addresses.
func (v VMA) String() string {
	return fmt.Sprintf("[%#x,%#x) %v", uint64(v.Lo.Base()), uint64(v.Hi.Base()), v.Prot)
}

// vmaSet is an ordered set of non-overlapping VMAs with Linux-like
// split/merge semantics: unmap punches holes (splitting areas), protect
// splits at range edges and merges adjacent areas of equal protection.
type vmaSet struct {
	areas []VMA // sorted by Lo, pairwise disjoint
}

// clone returns a deep copy (the slice is the only mutable state).
func (s *vmaSet) clone() *vmaSet {
	return &vmaSet{areas: append([]VMA(nil), s.areas...)}
}

// len returns the number of areas.
func (s *vmaSet) len() int { return len(s.areas) }

// find returns the VMA containing the page, if any.
func (s *vmaSet) find(p mem.VPN) (VMA, bool) {
	i := sort.Search(len(s.areas), func(i int) bool { return s.areas[i].Hi > p })
	if i < len(s.areas) && s.areas[i].Contains(p) {
		return s.areas[i], true
	}
	return VMA{}, false
}

// overlaps reports whether any area intersects [lo, hi).
func (s *vmaSet) overlaps(lo, hi mem.VPN) bool {
	i := sort.Search(len(s.areas), func(i int) bool { return s.areas[i].Hi > lo })
	return i < len(s.areas) && s.areas[i].Lo < hi
}

// insert adds a new area. It is an error for the range to overlap an
// existing area (the address allocator prevents this in normal operation).
func (s *vmaSet) insert(v VMA) error {
	if v.Lo >= v.Hi {
		return fmt.Errorf("vm: empty or inverted VMA %v", v)
	}
	if s.overlaps(v.Lo, v.Hi) {
		return fmt.Errorf("vm: VMA %v overlaps an existing area", v)
	}
	i := sort.Search(len(s.areas), func(i int) bool { return s.areas[i].Lo > v.Lo })
	//popcornvet:bounded one entry per live VMA; mmap/munmap balance bounds the address-space map
	s.areas = append(s.areas, VMA{})
	copy(s.areas[i+1:], s.areas[i:])
	s.areas[i] = v
	s.mergeAround(i)
	return nil
}

// remove unmaps [lo, hi), splitting areas that straddle the edges. It
// returns the sub-ranges that were actually mapped (for page cleanup).
func (s *vmaSet) remove(lo, hi mem.VPN) []VMA {
	if lo >= hi {
		return nil
	}
	var removed []VMA
	out := s.areas[:0:0]
	for _, a := range s.areas {
		if a.Hi <= lo || a.Lo >= hi {
			out = append(out, a)
			continue
		}
		cutLo, cutHi := maxVPN(a.Lo, lo), minVPN(a.Hi, hi)
		removed = append(removed, VMA{Lo: cutLo, Hi: cutHi, Prot: a.Prot})
		if a.Lo < cutLo {
			out = append(out, VMA{Lo: a.Lo, Hi: cutLo, Prot: a.Prot})
		}
		if a.Hi > cutHi {
			out = append(out, VMA{Lo: cutHi, Hi: a.Hi, Prot: a.Prot})
		}
	}
	s.areas = out
	return removed
}

// protect changes the protection of every mapped page in [lo, hi),
// splitting at the edges and merging equal-protection neighbours. It
// returns the sub-ranges whose protection actually changed. Unmapped gaps
// inside the range are skipped, as with Linux mprotect on holes... the
// caller decides whether that is an error.
func (s *vmaSet) protect(lo, hi mem.VPN, prot mem.Prot) []VMA {
	if lo >= hi {
		return nil
	}
	var changed []VMA
	out := s.areas[:0:0]
	for _, a := range s.areas {
		if a.Hi <= lo || a.Lo >= hi || a.Prot == prot {
			out = append(out, a)
			continue
		}
		cutLo, cutHi := maxVPN(a.Lo, lo), minVPN(a.Hi, hi)
		changed = append(changed, VMA{Lo: cutLo, Hi: cutHi, Prot: a.Prot})
		if a.Lo < cutLo {
			out = append(out, VMA{Lo: a.Lo, Hi: cutLo, Prot: a.Prot})
		}
		out = append(out, VMA{Lo: cutLo, Hi: cutHi, Prot: prot})
		if a.Hi > cutHi {
			out = append(out, VMA{Lo: cutHi, Hi: a.Hi, Prot: a.Prot})
		}
	}
	s.areas = out
	s.mergeAll()
	return changed
}

// covered reports whether every page of [lo, hi) is mapped.
func (s *vmaSet) covered(lo, hi mem.VPN) bool {
	p := lo
	for p < hi {
		a, ok := s.find(p)
		if !ok {
			return false
		}
		p = a.Hi
	}
	return true
}

// mergeAround coalesces the area at index i with equal-protection adjacent
// neighbours.
func (s *vmaSet) mergeAround(i int) {
	if i+1 < len(s.areas) && s.areas[i].Hi == s.areas[i+1].Lo && s.areas[i].Prot == s.areas[i+1].Prot {
		s.areas[i].Hi = s.areas[i+1].Hi
		s.areas = append(s.areas[:i+1], s.areas[i+2:]...)
	}
	if i > 0 && s.areas[i-1].Hi == s.areas[i].Lo && s.areas[i-1].Prot == s.areas[i].Prot {
		s.areas[i-1].Hi = s.areas[i].Hi
		s.areas = append(s.areas[:i], s.areas[i+1:]...)
	}
}

// mergeAll coalesces all adjacent equal-protection areas.
func (s *vmaSet) mergeAll() {
	if len(s.areas) < 2 {
		return
	}
	out := s.areas[:1]
	for _, a := range s.areas[1:] {
		last := &out[len(out)-1]
		if last.Hi == a.Lo && last.Prot == a.Prot {
			last.Hi = a.Hi
		} else {
			out = append(out, a)
		}
	}
	s.areas = out
}

// invariantErr checks ordering, disjointness and maximal coalescing,
// returning a description of the first violation. Used by tests.
func (s *vmaSet) invariantErr() error {
	for i, a := range s.areas {
		if a.Lo >= a.Hi {
			return fmt.Errorf("area %d empty: %v", i, a)
		}
		if i == 0 {
			continue
		}
		prev := s.areas[i-1]
		if prev.Hi > a.Lo {
			return fmt.Errorf("areas %d,%d overlap: %v %v", i-1, i, prev, a)
		}
		if prev.Hi == a.Lo && prev.Prot == a.Prot {
			return fmt.Errorf("areas %d,%d not coalesced: %v %v", i-1, i, prev, a)
		}
	}
	return nil
}

func (s *vmaSet) String() string {
	parts := make([]string, len(s.areas))
	for i, a := range s.areas {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ")
}

func minVPN(a, b mem.VPN) mem.VPN {
	if a < b {
		return a
	}
	return b
}

func maxVPN(a, b mem.VPN) mem.VPN {
	if a > b {
		return a
	}
	return b
}
