package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestCompareAndSwap(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		swapped, err := sps[0].CompareAndSwap(p, 0, addr, 0, 10)
		if err != nil || !swapped {
			t.Fatalf("CAS(0->10) = %v, %v", swapped, err)
		}
		swapped, err = sps[0].CompareAndSwap(p, 0, addr, 0, 20)
		if err != nil || swapped {
			t.Fatalf("CAS with wrong old = %v, %v; want false", swapped, err)
		}
		if v, _ := sps[0].Load(p, 0, addr); v != 10 {
			t.Fatalf("value = %d, want 10", v)
		}
		// CAS from another kernel must see the current value.
		swapped, err = sps[1].CompareAndSwap(p, 2, addr, 10, 30)
		if err != nil || !swapped {
			t.Fatalf("remote CAS = %v, %v", swapped, err)
		}
		if v, _ := sps[0].Load(p, 0, addr); v != 30 {
			t.Fatalf("value after remote CAS = %d, want 30", v)
		}
	})
}

func TestCASOnReadOnlyFails(t *testing.T) {
	ev := newEnv(t, 1, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead)
		if _, err := sps[0].CompareAndSwap(p, 0, addr, 0, 1); err == nil {
			t.Fatal("CAS on read-only page succeeded")
		}
	})
}

func TestFetchAddAtomicAcrossKernels(t *testing.T) {
	// Concurrent FetchAdds from all kernels must not lose increments —
	// the classic shared-counter test the MSI protocol must pass.
	const perKernel = 50
	ev := newEnv(t, 4, 64)
	sps := ev.group(t, 1)
	wg := sim.NewWaitGroup()
	wg.Add(4)
	ev.e.Spawn("driver", func(p *sim.Proc) {
		addr, err := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		for k := 0; k < 4; k++ {
			k := k
			ev.e.Spawn("adder", func(ap *sim.Proc) {
				defer wg.Done()
				for i := 0; i < perKernel; i++ {
					if _, err := sps[k].FetchAdd(ap, 2*k, addr, 1); err != nil {
						t.Errorf("kernel %d FetchAdd: %v", k, err)
						return
					}
				}
			})
		}
		wg.Wait(p)
		if v, err := sps[0].Load(p, 0, addr); err != nil || v != 4*perKernel {
			t.Errorf("counter = %d, %v; want %d", v, err, 4*perKernel)
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestTouchWriteKeepsValue(t *testing.T) {
	ev := newEnv(t, 1, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		_ = sps[0].Store(p, 0, addr, 123)
		if err := sps[0].Touch(p, 0, addr, true); err != nil {
			t.Fatalf("Touch: %v", err)
		}
		if v, _ := sps[0].Load(p, 0, addr); v != 123 {
			t.Fatalf("Touch(write) clobbered value: %d", v)
		}
	})
}
