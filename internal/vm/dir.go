package vm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// dirTransaction is the origin-side heart of the consistency protocol: it
// serialises on the page's directory entry, revokes conflicting copies, and
// produces the grant for the requesting kernel. The caller holds the
// address-space lock shared.
//
//popcornvet:allow locksend holding the directory-entry lock across the revocation RPCs is the protocol: it is what makes a page's ownership transition atomic. Invalidate handlers at remote kernels touch only their local page tables and never take origin directory locks, so no wait cycle can close.
func (sp *Space) dirTransaction(p *sim.Proc, req msg.NodeID, vpn mem.VPN, write, noCopy bool) (*pageGrant, error) {
	// The vm.dir span covers the origin-side transaction: waiting for the
	// page's directory-entry lock plus any revocation fan-out. It runs under
	// vm.fault for local faults and under handle.page-fetch for remote ones.
	var dirScope trace.Scope
	if col := sp.svc.ep.Collector(); col != nil {
		dirScope = col.Begin(p, "vm.dir", int(sp.svc.node))
	}
	defer dirScope.End()
	vma, ok := sp.vmas.find(vpn)
	if !ok {
		return &pageGrant{Code: codeSegv, Err: fmt.Sprintf("page %#x unmapped", uint64(vpn.Base()))}, nil
	}
	if write && !vma.Prot.Writable() {
		return &pageGrant{Code: codeAccess, Err: fmt.Sprintf("write to %v page", vma.Prot)}, nil
	}
	if !vma.Prot.Readable() {
		return &pageGrant{Code: codeAccess, Err: fmt.Sprintf("%v page", vma.Prot)}, nil
	}
	de, ok := sp.dir[vpn]
	if !ok {
		de = &dirEntry{state: pageUnmapped, mu: sim.NewMutex(sp.svc.e).SetLabel("vm.dir-entry")}
		sp.dir[vpn] = de
	}
	de.mu.Lock(p)
	defer de.mu.Unlock(p)
	if noCopy && de.state == pageShared {
		// The requester disclaims the read copy the directory has on record
		// (an abandoned prefetch or failed install left the directory ahead
		// of its page table). Believe the page table: drop the stale sharer
		// entry so the grant below transfers the data again instead of
		// assuming a copy that does not exist.
		if _, stale := de.sharers[req]; stale {
			delete(de.sharers, req)
			sp.svc.metrics.Counter("vm.dir.desync_repaired").Inc()
		}
	}
	de.version++
	ver := de.version
	// Every locked directory transaction is one protocol-relative commit for
	// the fault plane's origin-crash triggers (a nil check when no plan).
	sp.svc.fabric.RecordDirCommit(sp.svc.node)
	grant, err := sp.dirApply(p, req, vpn, de, vma, ver, write, noCopy)
	if err == nil && grant != nil && grant.Err == "" && sp.svc.failover {
		// Mirror the committed entry to the successor before the grant is
		// released: still under de.mu, so the per-entry replication stream
		// is ordered, and the requester can never act on a grant the
		// successor has not logged.
		sp.shipDirEntry(p, vpn, de)
	}
	return grant, err
}

// dirApply performs the MSI state transition for one locked directory entry
// and produces the grant. Split from dirTransaction so the failover plane
// can ship the entry's post-transaction snapshot between the transition and
// the grant's release.
//
//popcornvet:allow locksend same protocol invariant as dirTransaction: the revocation fan-out under the entry lock is what makes the ownership transition atomic, and invalidate handlers never take origin directory locks
func (sp *Space) dirApply(p *sim.Proc, req msg.NodeID, vpn mem.VPN, de *dirEntry, vma VMA, ver uint64, write, noCopy bool) (*pageGrant, error) {
	sharedProt := vma.Prot &^ mem.ProtWrite
	exclusiveProt := vma.Prot

	ck := sp.svc.checker
	switch de.state {
	case pageUnmapped:
		// A fresh entry zero-fills. A reclaimed entry (its owner's kernel
		// died) re-grants the directory's last written-back value, faulted
		// back from the home node.
		src := srcZeroFill
		if de.reclaimed {
			src = int(sp.origin)
		}
		if write {
			de.state = pageModified
			de.owner = req
			ck.Grant(p, int64(sp.gid), vpn, req, true, true, de.value)
			return &pageGrant{Value: de.value, Src: src, Prot: exclusiveProt, Version: ver}, nil
		}
		de.state = pageShared
		de.sharers = map[msg.NodeID]struct{}{req: {}}
		ck.Grant(p, int64(sp.gid), vpn, req, false, true, de.value)
		return &pageGrant{Value: de.value, Src: src, Prot: sharedProt, Version: ver}, nil

	case pageShared:
		_, isSharer := de.sharers[req]
		if !write {
			de.sharers[req] = struct{}{}
			src := int(sp.origin)
			if isSharer {
				src = srcHaveCopy
			}
			ck.Grant(p, int64(sp.gid), vpn, req, false, !isSharer, de.value)
			return &pageGrant{Value: de.value, Src: src, Prot: sharedProt, Version: ver}, nil
		}
		// Write on a shared page: revoke every other copy, then grant
		// exclusive.
		others := nodeSet(de.sharers, req)
		sp.revokeCopies(p, others, vpn, false, ver)
		de.state = pageModified
		de.owner = req
		de.sharers = nil
		src := int(sp.origin)
		if isSharer {
			src = srcHaveCopy
		}
		ck.Grant(p, int64(sp.gid), vpn, req, true, !isSharer, de.value)
		return &pageGrant{Value: de.value, Src: src, Prot: exclusiveProt, Version: ver}, nil

	case pageModified:
		if de.owner == req {
			if noCopy {
				// The recorded owner disclaims its exclusive copy. A promoted
				// directory can be ahead of the owner's page table this way:
				// the copy was surrendered to the old origin in a revocation
				// whose commit died with it. Believe the page table and
				// transfer the directory's preserved value instead of
				// re-granting data that no longer exists.
				sp.svc.metrics.Counter("vm.dir.desync_repaired").Inc()
				if write {
					ck.Grant(p, int64(sp.gid), vpn, req, true, true, de.value)
					return &pageGrant{Value: de.value, Src: int(sp.origin), Prot: exclusiveProt, Version: ver}, nil
				}
				de.state = pageShared
				de.sharers = map[msg.NodeID]struct{}{req: {}}
				de.owner = 0
				ck.Grant(p, int64(sp.gid), vpn, req, false, true, de.value)
				return &pageGrant{Value: de.value, Src: int(sp.origin), Prot: sharedProt, Version: ver}, nil
			}
			// The owner lost PTE bits (mprotect round trip) but still has
			// the data; re-grant in place.
			ck.Grant(p, int64(sp.gid), vpn, req, true, false, 0)
			return &pageGrant{Src: srcHaveCopy, Prot: exclusiveProt, Version: ver}, nil
		}
		old := de.owner
		ack := sp.revokeOwner(p, old, vpn, !write, ver)
		if ack.HadCopy {
			de.value = ack.Value
		}
		if write {
			de.owner = req
			ck.Grant(p, int64(sp.gid), vpn, req, true, true, de.value)
			return &pageGrant{Value: de.value, Src: int(old), Prot: exclusiveProt, Version: ver}, nil
		}
		de.state = pageShared
		de.sharers = map[msg.NodeID]struct{}{req: {}}
		if ack.HadCopy {
			// The old owner kept a downgraded read copy.
			de.sharers[old] = struct{}{}
		}
		de.owner = 0
		ck.Grant(p, int64(sp.gid), vpn, req, false, true, de.value)
		return &pageGrant{Value: de.value, Src: int(old), Prot: sharedProt, Version: ver}, nil
	}
	return nil, fmt.Errorf("vm: directory entry for %#x in impossible state %d", uint64(vpn.Base()), de.state)
}

// revokeCopies invalidates read copies at the given kernels (the origin's
// own copy is handled locally; remote copies over the fabric, in parallel).
func (sp *Space) revokeCopies(p *sim.Proc, targets []msg.NodeID, vpn mem.VPN, downgrade bool, ver uint64) {
	remote := targets[:0:0]
	for _, t := range targets {
		if sp.svc.injectSkipRevoke && t == sp.svc.skipRevokeTarget {
			// Deliberately broken protocol (sanitizer tests): leave the
			// stale copy in place.
			sp.svc.metrics.Counter("vm.inject.skipped").Inc()
			continue
		}
		if t == sp.svc.node {
			ack := sp.applyInval(p, vpn, downgrade, ver)
			sp.svc.checker.Revoked(p, int64(sp.gid), vpn, t, downgrade, ack.HadCopy, ack.Value)
		} else {
			remote = append(remote, t)
		}
	}
	if len(remote) == 0 {
		return
	}
	sp.svc.metrics.Counter("vm.inval.sent").Add(uint64(len(remote)))
	replies, errs := sp.svc.ep.CallEachErr(p, remote, func(to msg.NodeID) *msg.Message {
		m := &msg.Message{Type: msg.TypePageInvalidate, To: to, Size: sizeSmallReq,
			Payload: &pageInval{GID: sp.gid, VPN: vpn, Downgrade: downgrade, Version: ver}}
		// Origin-role traffic carries the origin epoch: if this kernel dies
		// and later rejoins, copies of this invalidation still in flight are
		// fenced at delivery instead of revoking pages behind the promoted
		// successor's back.
		sp.svc.fabric.StampOrigin(m, OriginKernelOf(sp.gid))
		return m
	})
	for i, err := range errs {
		if err == nil {
			ack := replies[i].Payload.(*pageInvalAck)
			sp.svc.checker.Revoked(p, int64(sp.gid), vpn, remote[i], downgrade, ack.HadCopy, ack.Value)
			continue
		}
		if msg.IsDeadPeer(err) {
			// The sharer's kernel died: its copy is gone with it, which is
			// exactly what an invalidation would have achieved. No Revoked
			// commit — the sanitizer's crash sweep already forgot the copy.
			sp.svc.metrics.Counter("vm.inval.deadpeer").Inc()
			continue
		}
		panic(fmt.Sprintf("vm: invalidation fan-out failed: %v", err))
	}
}

// revokeOwner revokes (or downgrades) the exclusive copy at the owning
// kernel and returns the written-back contents.
func (sp *Space) revokeOwner(p *sim.Proc, owner msg.NodeID, vpn mem.VPN, downgrade bool, ver uint64) pageInvalAck {
	if sp.svc.injectSkipRevoke && owner == sp.svc.skipRevokeTarget {
		// Deliberately broken protocol (sanitizer tests): the owner keeps
		// its writable copy and no write-back happens.
		sp.svc.metrics.Counter("vm.inject.skipped").Inc()
		return pageInvalAck{}
	}
	if owner == sp.svc.node {
		ack := sp.applyInval(p, vpn, downgrade, ver)
		sp.svc.checker.Revoked(p, int64(sp.gid), vpn, owner, downgrade, ack.HadCopy, ack.Value)
		return ack
	}
	sp.svc.metrics.Counter("vm.inval.sent").Inc()
	rm := &msg.Message{
		Type: msg.TypePageInvalidate, To: owner, Size: sizeSmallReq,
		Payload: &pageInval{GID: sp.gid, VPN: vpn, Downgrade: downgrade, Version: ver}}
	// Epoch-stamped like the copy fan-out above (see revokeCopies).
	sp.svc.fabric.StampOrigin(rm, OriginKernelOf(sp.gid))
	reply, err := sp.svc.ep.Call(p, rm)
	if err != nil {
		if msg.IsDeadPeer(err) {
			// The owner died before writing back: its copy (and any writes
			// not yet written back) are lost with the kernel. The directory's
			// last known value stands; the sanitizer saw the crash while the
			// owner still shadowed as writable, so the value is redefined by
			// the next grant rather than checked against the lost write-back.
			sp.svc.metrics.Counter("vm.inval.deadpeer").Inc()
			return pageInvalAck{}
		}
		panic(fmt.Sprintf("vm: owner revocation failed: %v", err))
	}
	ack := *reply.Payload.(*pageInvalAck)
	sp.svc.checker.Revoked(p, int64(sp.gid), vpn, owner, downgrade, ack.HadCopy, ack.Value)
	return ack
}

// applyInval executes an invalidation against this kernel's copy of the
// page: mark racing faults stale, strip the PTE (or its write bit), release
// the frame on full invalidation, and charge the TLB shootdown.
//
// The sanitizer is deliberately NOT told here. The revocation only takes
// effect at the origin when the ack arrives — that is where the directory
// commits the written-back value — and a revokee can die with its ack in
// flight, in which case the write-back is lost and the directory keeps its
// older value. Committing the shadow at the revokee would make that
// legitimate degradation look like a stale-read violation, so the caller
// (revokeOwner/revokeCopies, at the origin) drives Checker.Revoked from the
// ack instead.
func (sp *Space) applyInval(p *sim.Proc, vpn mem.VPN, downgrade bool, ver uint64) pageInvalAck {
	var ack pageInvalAck
	if pend, ok := sp.pending[vpn]; ok {
		pend.invalidated = true
		if ver > pend.invalVersion {
			pend.invalVersion = ver
		}
	}
	pte, ok := sp.pt.Lookup(vpn)
	if !ok {
		return ack
	}
	ack.HadCopy = true
	ack.Value = sp.values[vpn]
	if downgrade {
		pte.Prot &^= mem.ProtWrite
		sp.pt.Set(vpn, pte)
	} else {
		sp.pt.Clear(vpn)
		if pte.Frame != mem.NoFrame {
			sp.svc.frames.FreeFrame(p, pte.Frame)
		}
		delete(sp.values, vpn)
	}
	p.Sleep(sp.svc.machine.TLBShootdown(sp.shootdownCores(), false))
	sp.svc.metrics.Counter("vm.inval.applied").Inc()
	return ack
}
