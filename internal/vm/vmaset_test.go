package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func mustInsert(t *testing.T, s *vmaSet, v VMA) {
	t.Helper()
	if err := s.insert(v); err != nil {
		t.Fatalf("insert(%v): %v", v, err)
	}
}

func TestVMASetInsertFind(t *testing.T) {
	s := &vmaSet{}
	mustInsert(t, s, VMA{Lo: 10, Hi: 20, Prot: mem.ProtRead})
	mustInsert(t, s, VMA{Lo: 30, Hi: 40, Prot: mem.ProtRead | mem.ProtWrite})
	if _, ok := s.find(9); ok {
		t.Fatal("found VMA before first area")
	}
	v, ok := s.find(10)
	if !ok || v.Lo != 10 {
		t.Fatalf("find(10) = %v, %v", v, ok)
	}
	if _, ok := s.find(20); ok {
		t.Fatal("Hi bound should be exclusive")
	}
	v, ok = s.find(35)
	if !ok || !v.Prot.Writable() {
		t.Fatalf("find(35) = %v, %v", v, ok)
	}
}

func TestVMASetInsertRejectsOverlap(t *testing.T) {
	s := &vmaSet{}
	mustInsert(t, s, VMA{Lo: 10, Hi: 20, Prot: mem.ProtRead})
	for _, v := range []VMA{
		{Lo: 15, Hi: 25, Prot: mem.ProtRead},
		{Lo: 5, Hi: 11, Prot: mem.ProtRead},
		{Lo: 10, Hi: 20, Prot: mem.ProtRead},
		{Lo: 12, Hi: 13, Prot: mem.ProtRead},
	} {
		if err := s.insert(v); err == nil {
			t.Fatalf("insert(%v) accepted overlap", v)
		}
	}
	if err := s.insert(VMA{Lo: 5, Hi: 5}); err == nil {
		t.Fatal("empty VMA accepted")
	}
}

func TestVMASetInsertCoalescesNeighbours(t *testing.T) {
	s := &vmaSet{}
	mustInsert(t, s, VMA{Lo: 10, Hi: 20, Prot: mem.ProtRead})
	mustInsert(t, s, VMA{Lo: 30, Hi: 40, Prot: mem.ProtRead})
	mustInsert(t, s, VMA{Lo: 20, Hi: 30, Prot: mem.ProtRead})
	if s.len() != 1 {
		t.Fatalf("areas = %v, want one coalesced area", s)
	}
	v, _ := s.find(25)
	if v.Lo != 10 || v.Hi != 40 {
		t.Fatalf("coalesced area = %v", v)
	}
	// Different protection must not coalesce.
	mustInsert(t, s, VMA{Lo: 40, Hi: 50, Prot: mem.ProtRead | mem.ProtWrite})
	if s.len() != 2 {
		t.Fatalf("areas = %v, want 2", s)
	}
}

func TestVMASetRemoveSplits(t *testing.T) {
	s := &vmaSet{}
	mustInsert(t, s, VMA{Lo: 10, Hi: 30, Prot: mem.ProtRead})
	removed := s.remove(15, 20)
	if len(removed) != 1 || removed[0].Lo != 15 || removed[0].Hi != 20 {
		t.Fatalf("removed = %v", removed)
	}
	if s.len() != 2 {
		t.Fatalf("areas = %v, want split into 2", s)
	}
	if _, ok := s.find(17); ok {
		t.Fatal("hole still mapped")
	}
	if _, ok := s.find(14); !ok {
		t.Fatal("left part lost")
	}
	if _, ok := s.find(20); !ok {
		t.Fatal("right part lost")
	}
}

func TestVMASetRemoveAcrossAreas(t *testing.T) {
	s := &vmaSet{}
	mustInsert(t, s, VMA{Lo: 0, Hi: 10, Prot: mem.ProtRead})
	mustInsert(t, s, VMA{Lo: 20, Hi: 30, Prot: mem.ProtRead | mem.ProtWrite})
	removed := s.remove(5, 25)
	if len(removed) != 2 {
		t.Fatalf("removed = %v, want 2 fragments", removed)
	}
	if removed[0].Hi != 10 || removed[1].Lo != 20 {
		t.Fatalf("removed fragments wrong: %v", removed)
	}
	if s.remove(100, 200) != nil {
		t.Fatal("removing a hole returned fragments")
	}
}

func TestVMASetProtectSplitsAndMerges(t *testing.T) {
	s := &vmaSet{}
	mustInsert(t, s, VMA{Lo: 0, Hi: 30, Prot: mem.ProtRead | mem.ProtWrite})
	changed := s.protect(10, 20, mem.ProtRead)
	if len(changed) != 1 || changed[0].Prot != (mem.ProtRead|mem.ProtWrite) {
		t.Fatalf("changed = %v", changed)
	}
	if s.len() != 3 {
		t.Fatalf("areas = %v, want 3 after split", s)
	}
	// Re-protecting back should merge to one again.
	s.protect(10, 20, mem.ProtRead|mem.ProtWrite)
	if s.len() != 1 {
		t.Fatalf("areas = %v, want merged back to 1", s)
	}
	// Protect with identical protection changes nothing.
	if got := s.protect(0, 30, mem.ProtRead|mem.ProtWrite); got != nil {
		t.Fatalf("no-op protect changed %v", got)
	}
}

func TestVMASetCovered(t *testing.T) {
	s := &vmaSet{}
	mustInsert(t, s, VMA{Lo: 0, Hi: 10, Prot: mem.ProtRead})
	mustInsert(t, s, VMA{Lo: 10, Hi: 20, Prot: mem.ProtRead | mem.ProtWrite})
	if !s.covered(0, 20) {
		t.Fatal("contiguous areas reported uncovered")
	}
	if s.covered(0, 21) {
		t.Fatal("range past the end reported covered")
	}
	s.remove(5, 6)
	if s.covered(0, 20) {
		t.Fatal("range with a hole reported covered")
	}
}

// TestVMASetRandomOpsInvariant drives a random op sequence and checks both
// the structural invariants and agreement with a page-level oracle.
func TestVMASetRandomOpsInvariant(t *testing.T) {
	const space = 64 // pages
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &vmaSet{}
		oracle := make(map[mem.VPN]mem.Prot) // page -> prot, absent = unmapped
		prots := []mem.Prot{mem.ProtRead, mem.ProtRead | mem.ProtWrite, mem.ProtRead | mem.ProtExec, 0}
		for op := 0; op < 200; op++ {
			lo := mem.VPN(rng.Intn(space))
			hi := lo + mem.VPN(rng.Intn(8)+1)
			prot := prots[rng.Intn(len(prots))]
			switch rng.Intn(3) {
			case 0: // insert if free
				if !s.overlaps(lo, hi) {
					if err := s.insert(VMA{Lo: lo, Hi: hi, Prot: prot}); err != nil {
						t.Logf("insert failed on free range: %v", err)
						return false
					}
					for v := lo; v < hi; v++ {
						oracle[v] = prot
					}
				}
			case 1: // remove
				s.remove(lo, hi)
				for v := lo; v < hi; v++ {
					delete(oracle, v)
				}
			case 2: // protect mapped sub-ranges
				s.protect(lo, hi, prot)
				for v := lo; v < hi; v++ {
					if _, ok := oracle[v]; ok {
						oracle[v] = prot
					}
				}
			}
			if err := s.invariantErr(); err != nil {
				t.Logf("invariant violated after op %d: %v (%v)", op, err, s)
				return false
			}
			for v := mem.VPN(0); v < space+8; v++ {
				area, mapped := s.find(v)
				wantProt, wantMapped := oracle[v]
				if mapped != wantMapped {
					t.Logf("page %d mapped=%v oracle=%v (%v)", v, mapped, wantMapped, s)
					return false
				}
				if mapped && area.Prot != wantProt {
					t.Logf("page %d prot=%v oracle=%v", v, area.Prot, wantProt)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVMASetClone(t *testing.T) {
	s := &vmaSet{}
	mustInsert(t, s, VMA{Lo: 0, Hi: 10, Prot: mem.ProtRead})
	c := s.clone()
	c.remove(0, 10)
	if s.len() != 1 {
		t.Fatal("clone shares state with original")
	}
}
