package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

func TestEagerMapPushPopulatesReplicaCaches(t *testing.T) {
	ev := newEnv(t, 3, 64)
	sps := ev.group(t, 1)
	ev.svcs[0].SetEagerMapPush(true)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[0].Map(p, 2*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		// Replicas already know the area: faulting must not issue a VMA
		// fetch RPC.
		if err := sps[1].Store(p, 2, addr, 1); err != nil {
			t.Fatalf("replica Store: %v", err)
		}
		if err := sps[2].Store(p, 4, addr+hw.PageSize, 2); err != nil {
			t.Fatalf("replica Store: %v", err)
		}
	})
	for k := 1; k <= 2; k++ {
		if got := ev.svcs[k].metrics.Counter("vm.vmafetch").Value(); got != 0 {
			t.Errorf("kernel %d issued %d VMA fetches despite eager push", k, got)
		}
	}
	if got := ev.svcs[0].metrics.Counter("vm.update.pushed").Value(); got == 0 {
		t.Error("eager push recorded no update pushes")
	}
}

func TestLazyMapLeavesReplicasCold(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, _ := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err := sps[1].Store(p, 2, addr, 1); err != nil {
			t.Fatalf("replica Store: %v", err)
		}
	})
	if got := ev.svcs[1].metrics.Counter("vm.vmafetch").Value(); got != 1 {
		t.Errorf("lazy replica issued %d VMA fetches, want 1", got)
	}
	if got := ev.svcs[0].metrics.Counter("vm.update.pushed").Value(); got != 0 {
		t.Errorf("lazy map pushed %d updates, want 0", got)
	}
}

// TestVersionMonotonicOnReplica checks that a replica's observed layout
// version never decreases through any mix of operations.
func TestVersionMonotonicOnReplica(t *testing.T) {
	ev := newEnv(t, 2, 128)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		last := sps[1].Version()
		checkpoint := func(tag string) {
			if v := sps[1].Version(); v < last {
				t.Fatalf("%s: version went backwards %d -> %d", tag, last, v)
			} else {
				last = v
			}
		}
		addr, _ := sps[0].Map(p, 8*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		checkpoint("after map")
		_ = sps[1].Store(p, 2, addr, 1)
		checkpoint("after replica fault")
		_ = sps[0].Protect(p, addr, hw.PageSize, mem.ProtRead)
		checkpoint("after protect")
		_ = sps[0].Unmap(p, addr+4*hw.PageSize, 2*hw.PageSize)
		checkpoint("after unmap")
		_, _ = sps[1].Map(p, hw.PageSize, mem.ProtRead)
		checkpoint("after remote map")
	})
}

func TestSbrkGrowTouchShrink(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		base, err := sps[0].Sbrk(p, 2*hw.PageSize)
		if err != nil {
			t.Fatalf("Sbrk grow: %v", err)
		}
		if err := sps[0].Store(p, 0, base, 5); err != nil {
			t.Fatalf("heap store: %v", err)
		}
		// The heap is part of the shared address space: remote access works.
		if v, err := sps[1].Load(p, 2, base); err != nil || v != 5 {
			t.Fatalf("remote heap load = %d, %v", v, err)
		}
		// Remote Sbrk forwards to the origin.
		if _, err := sps[1].Sbrk(p, hw.PageSize); err != nil {
			t.Fatalf("remote Sbrk: %v", err)
		}
		cur, err := sps[0].Sbrk(p, 0)
		if err != nil {
			t.Fatalf("Sbrk(0): %v", err)
		}
		if cur != base+3*hw.PageSize {
			t.Fatalf("break = %#x, want %#x", uint64(cur), uint64(base+3*hw.PageSize))
		}
		// Shrink everything; remote copies must be revoked.
		if _, err := sps[0].Sbrk(p, -3*hw.PageSize); err != nil {
			t.Fatalf("Sbrk shrink: %v", err)
		}
		if _, err := sps[1].Load(p, 2, base); err == nil {
			t.Fatal("heap readable after shrink")
		}
	})
	for k, a := range ev.allocs {
		if a.InUse() != 0 {
			t.Errorf("kernel %d leaked %d frames", k, a.InUse())
		}
	}
}

func TestSbrkBelowBaseRejected(t *testing.T) {
	ev := newEnv(t, 1, 8)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		if _, err := sps[0].Sbrk(p, -hw.PageSize); err == nil {
			t.Fatal("shrinking below the heap base succeeded")
		}
	})
}
