package vm

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sanitize"
	"repro/internal/sim"
	"repro/internal/trace"
)

// attachSanitizer wires a checker into every kernel of the test env the way
// core.AttachSanitizer does for a booted OS.
func attachSanitizer(ev *env, cfg sanitize.Config) *sanitize.Checker {
	c := sanitize.New(ev.e, cfg)
	ev.e.SetProcObserver(c)
	ev.fabric.SetObserver(c)
	for _, svc := range ev.svcs {
		svc.AttachChecker(c)
	}
	return c
}

// timestampRE matches the virtual-time fields in a rendered violation
// (including the %12v left-padding) so the golden comparison survives
// cost-model changes.
var timestampRE = regexp.MustCompile(`[ \t]*\d+(\.\d+)?(ns|µs|us|ms|s)`)

func normalizeReport(s string) string {
	return timestampRE.ReplaceAllString(s, "T")
}

// TestSanitizerCatchesSkippedRevoke is the golden-output test for the
// coherence sanitizer: a deliberately broken directory (InjectSkipRevoke
// drops invalidations bound for kernel 1) must produce exactly one
// single-writer violation, with the page's grant/revoke history attached
// from the trace buffer.
func TestSanitizerCatchesSkippedRevoke(t *testing.T) {
	ev := newEnv(t, 2, 64)
	buf := trace.NewBuffer(256)
	ck := attachSanitizer(ev, sanitize.Config{Trace: buf})
	ev.svcs[0].InjectSkipRevoke(1)
	sps := ev.group(t, 1)

	var addr mem.Addr
	ev.run(t, func(p *sim.Proc) {
		var err error
		addr, err = sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		// Seed the page with a value at the origin...
		if err := sps[0].Store(p, 0, addr, 7); err != nil {
			t.Errorf("seed Store: %v", err)
			return
		}
		// ...replicate it to kernel 1 (shared copy)...
		if v, err := sps[1].Load(p, 2, addr); err != nil || v != 7 {
			t.Errorf("replica Load = %d, %v; want 7, nil", v, err)
			return
		}
		// ...then upgrade at the origin. The directory must invalidate
		// kernel 1's copy first, but the injected fault skips it: the
		// exclusive grant goes out while k1 still holds the page.
		if err := sps[0].Store(p, 0, addr, 9); err != nil {
			t.Errorf("upgrade Store: %v", err)
		}
	})

	vs := ck.Violations()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1:\n%s", len(vs), ck.Report())
	}
	v := vs[0]
	vpn := mem.PageOf(addr)
	if v.Kind != "single-writer" || v.Node != 0 || v.GID != 1 || v.VPN != vpn {
		t.Errorf("violation = kind=%q node=%d gid=%d vpn=%#x, want single-writer on k0 g1/p%#x",
			v.Kind, v.Node, v.GID, uint64(v.VPN), uint64(vpn))
	}

	page := fmt.Sprintf("g1/p%#x", uint64(vpn))
	got := normalizeReport(v.String())
	want := strings.ReplaceAll(strings.TrimLeft(`
single-writer violation atT on k0: exclusive grant of PAGE to k0 while k1 still holds a copy (rights=1)
  page history (PAGE):
T  k0  san.grant    PAGE excl to k0 fresh=true val=0
T  k0  san.revoke   PAGE at k0 downgrade=true hadCopy=true val=7
T  k1  san.grant    PAGE shared to k1 fresh=true val=7
`, "\n"), "PAGE", page)
	if got != strings.TrimRight(want, "\n") {
		t.Errorf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The injected fault is itself accounted for: exactly one invalidation
	// was dropped on the floor to provoke the violation.
	if n := ev.svcs[0].metrics.Counter("vm.inject.skipped").Value(); n != 1 {
		t.Errorf("vm.inject.skipped = %d, want 1", n)
	}
}

// TestSanitizerCleanWithoutInjection is the control: the identical schedule
// with an intact directory reports nothing.
func TestSanitizerCleanWithoutInjection(t *testing.T) {
	ev := newEnv(t, 2, 64)
	ck := attachSanitizer(ev, sanitize.Config{Trace: trace.NewBuffer(256), FailFast: true})
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		if err := sps[0].Store(p, 0, addr, 7); err != nil {
			t.Errorf("seed Store: %v", err)
			return
		}
		if v, err := sps[1].Load(p, 2, addr); err != nil || v != 7 {
			t.Errorf("replica Load = %d, %v; want 7, nil", v, err)
			return
		}
		if err := sps[0].Store(p, 0, addr, 9); err != nil {
			t.Errorf("upgrade Store: %v", err)
			return
		}
		// The revoke went through, so kernel 1 re-faults and sees the new
		// value.
		if v, err := sps[1].Load(p, 2, addr); err != nil || v != 9 {
			t.Errorf("replica re-Load = %d, %v; want 9, nil", v, err)
		}
	})
	if vs := ck.Violations(); len(vs) != 0 {
		t.Fatalf("unexpected violations:\n%s", ck.Report())
	}
}
