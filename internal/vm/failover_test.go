package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
)

// failoverEnv is newEnv with the failover plane attached on the fabric and
// every service, as core.OS.EnableFailover wires it.
func failoverEnv(t *testing.T, kernels int) *env {
	t.Helper()
	ev := newEnv(t, kernels, 64)
	ev.fabric.EnableFailover()
	for _, s := range ev.svcs {
		s.EnableFailover()
	}
	return ev
}

// TestPromotedOriginServesMirroredState drives real transactions against an
// origin, then promotes its successor from the mirror alone and requires the
// promoted directory to be observably identical: the layout resolves, the
// dead kernel's copies are purged but their written-back values survive, and
// reads and writes continue through the promoted origin.
func TestPromotedOriginServesMirroredState(t *testing.T) {
	ev := failoverEnv(t, 4)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		if err := sps[0].Store(p, 0, addr, 7); err != nil {
			t.Fatalf("Store at origin: %v", err)
		}
		if v, err := sps[2].Load(p, 4, addr); err != nil || v != 7 {
			t.Fatalf("Load at k2 = %d, %v; want 7", v, err)
		}
		// Kernel 0 is declared dead: its successor promotes from the mirror,
		// the fabric records the handover, and the survivors re-point.
		gids := ev.svcs[1].PromoteOrigin(0)
		if len(gids) != 1 || gids[0] != 1 {
			t.Fatalf("PromoteOrigin promoted %v, want [1]", gids)
		}
		ev.fabric.Promote(0, 1)
		ev.svcs[2].Retarget(1, 1)
		ev.svcs[3].Retarget(1, 1)
		// The dead kernel shared this page; its copy is purged but the
		// directory's value survives for a kernel that never held it.
		if v, err := sps[3].Load(p, 6, addr); err != nil || v != 7 {
			t.Errorf("Load at k3 after promotion = %d, %v; want 7", v, err)
		}
		// Writes keep flowing through the promoted origin.
		if err := sps[2].Store(p, 4, addr, 9); err != nil {
			t.Fatalf("Store at k2 after promotion: %v", err)
		}
		if v, err := sps[3].Load(p, 6, addr); err != nil || v != 9 {
			t.Errorf("Load at k3 after post-promotion store = %d, %v; want 9", v, err)
		}
	})
}

// TestMirrorValuePatchVersionGuard pins the replValue arithmetic on the
// mirror: the patch updates the value without advancing the entry version
// (so the origin's own replEntry for the same transaction still applies if
// the origin survives), and a fault-plan duplicate of the patch can never
// roll a newer value backwards.
func TestMirrorValuePatchVersionGuard(t *testing.T) {
	ev := newEnv(t, 2, 64)
	s := ev.svcs[1]
	s.applyRepl(&dirRepl{Kind: replEntry, GID: 7, Origin: 0, VPN: 100, State: int(pageModified), Owner: 2, Value: 16, Version: 5})
	s.applyRepl(&dirRepl{Kind: replValue, GID: 7, Origin: 0, VPN: 100, Value: 17, Version: 6})
	me := s.mirrors[7].entries[100]
	if me.value != 17 {
		t.Errorf("patched value = %d, want 17", me.value)
	}
	if me.version != 5 {
		t.Errorf("value patch advanced entry version to %d; must stay 5", me.version)
	}
	// The origin survived to ship the transaction's own entry snapshot: it
	// must still apply over the patch.
	s.applyRepl(&dirRepl{Kind: replEntry, GID: 7, Origin: 0, VPN: 100, State: int(pageModified), Owner: 3, Value: 17, Version: 6})
	if me = s.mirrors[7].entries[100]; me.owner != 3 || me.version != 6 {
		t.Errorf("same-version replEntry skipped after patch: owner %d version %d", me.owner, me.version)
	}
	// A duplicated patch (version no longer newer) is a no-op.
	s.applyRepl(&dirRepl{Kind: replValue, GID: 7, Origin: 0, VPN: 100, Value: 16, Version: 6})
	if me = s.mirrors[7].entries[100]; me.value != 17 {
		t.Errorf("stale duplicate patch rolled value back to %d", me.value)
	}
}

// TestSurrenderedValueDurableBeforeAck reproduces the revocation-surrender
// window: a remote owner's Modified copy is fully invalidated, the value
// exists only in the ack — and the origin dies before shipping its own
// entry snapshot. The revokee's preserve ship must already have patched the
// mirror, so after promotion both the disclaiming ex-owner (via the noCopy
// owner-desync repair) and a third kernel read the surrendered value, not
// the mirror's stale one.
func TestSurrenderedValueDurableBeforeAck(t *testing.T) {
	ev := failoverEnv(t, 4)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		if err := sps[2].Store(p, 4, addr, 17); err != nil {
			t.Fatalf("Store at k2: %v", err)
		}
		vpn := mem.PageOf(addr)
		mver := ev.svcs[1].mirrors[1].entries[vpn].version
		// The origin's revocation arrives at the owner, but the origin dies
		// with the ack in flight: its replEntry for this transaction never
		// ships. Deliver the invalidation directly to the owner's handler.
		ev.svcs[2].handlePageInvalidate(p, &msg.Message{From: 0, Payload: &pageInval{GID: 1, VPN: vpn, Version: mver + 1}})
		me := ev.svcs[1].mirrors[1].entries[vpn]
		if me.value != 17 {
			t.Fatalf("mirror value after surrender = %d, want 17 (preserved before the ack)", me.value)
		}
		if me.version != mver {
			t.Errorf("surrender patch advanced mirror version %d -> %d", mver, me.version)
		}
		ev.svcs[1].PromoteOrigin(0)
		ev.fabric.Promote(0, 1)
		ev.svcs[2].Retarget(1, 1)
		ev.svcs[3].Retarget(1, 1)
		// The promoted directory still records k2 as Modified owner, but k2's
		// page table lost the copy: the retry disclaims it and the repair
		// transfers the preserved value instead of re-granting nothing.
		if v, err := sps[2].Load(p, 4, addr); err != nil || v != 17 {
			t.Errorf("ex-owner re-read = %d, %v; want 17", v, err)
		}
		if v, err := sps[3].Load(p, 6, addr); err != nil || v != 17 {
			t.Errorf("third-kernel read = %d, %v; want 17", v, err)
		}
	})
}
