package vm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
)

// TestProtocolAgainstFlatMemoryOracle drives a long random sequence of
// sequential loads and stores issued from different kernels against one
// distributed address space, comparing every load with a flat map oracle.
// Because each operation completes before the next begins, the oracle is
// exact: any divergence is a coherence bug.
func TestProtocolAgainstFlatMemoryOracle(t *testing.T) {
	const (
		kernels = 4
		pages   = 16
		ops     = 2000
	)
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ev := newEnv(t, kernels, 256)
			sps := ev.group(t, 1)
			rng := rand.New(rand.NewSource(seed))
			ev.run(t, func(p *sim.Proc) {
				base, err := sps[0].Map(p, pages*hw.PageSize, mem.ProtRead|mem.ProtWrite)
				if err != nil {
					t.Errorf("Map: %v", err)
					return
				}
				oracle := make(map[mem.Addr]int64)
				for i := 0; i < ops; i++ {
					k := rng.Intn(kernels)
					addr := base + mem.Addr(rng.Intn(pages)*hw.PageSize)
					if rng.Intn(2) == 0 {
						val := rng.Int63()
						if err := sps[k].Store(p, 2*k, addr, val); err != nil {
							t.Errorf("op %d: kernel %d Store(%#x): %v", i, k, uint64(addr), err)
							return
						}
						oracle[addr] = val
					} else {
						got, err := sps[k].Load(p, 2*k, addr)
						if err != nil {
							t.Errorf("op %d: kernel %d Load(%#x): %v", i, k, uint64(addr), err)
							return
						}
						if want := oracle[addr]; got != want {
							t.Errorf("op %d: kernel %d Load(%#x) = %d, oracle says %d", i, k, uint64(addr), got, want)
							return
						}
					}
				}
			})
		})
	}
}

// TestProtocolConcurrentWritersConverge has one writer proc per kernel
// hammering a small page set concurrently, then verifies that (a) the run
// completes without protocol errors, and (b) after quiescence every kernel
// reads identical values for every page (single-system-image property).
func TestProtocolConcurrentWritersConverge(t *testing.T) {
	const (
		kernels = 4
		pages   = 4
		writes  = 100
	)
	ev := newEnv(t, kernels, 256)
	sps := ev.group(t, 1)
	var base mem.Addr
	done := sim.NewWaitGroup()
	done.Add(kernels)
	ev.e.Spawn("setup", func(p *sim.Proc) {
		var err error
		base, err = sps[0].Map(p, pages*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		for k := 0; k < kernels; k++ {
			k := k
			ev.e.Spawn(fmt.Sprintf("writer%d", k), func(wp *sim.Proc) {
				defer done.Done()
				rng := rand.New(rand.NewSource(int64(k) + 100))
				for i := 0; i < writes; i++ {
					addr := base + mem.Addr(rng.Intn(pages)*hw.PageSize)
					if rng.Intn(3) == 0 {
						if _, err := sps[k].Load(wp, 2*k, addr); err != nil {
							t.Errorf("writer %d Load: %v", k, err)
							return
						}
					} else {
						val := int64(k*1000000 + i)
						if err := sps[k].Store(wp, 2*k, addr, val); err != nil {
							t.Errorf("writer %d Store: %v", k, err)
							return
						}
					}
				}
			})
		}
		done.Wait(p)
		// Quiesced: all kernels must agree on every page.
		for pg := 0; pg < pages; pg++ {
			addr := base + mem.Addr(pg*hw.PageSize)
			ref, err := sps[0].Load(p, 0, addr)
			if err != nil {
				t.Errorf("final load kernel 0 page %d: %v", pg, err)
				continue
			}
			for k := 1; k < kernels; k++ {
				got, err := sps[k].Load(p, 2*k, addr)
				if err != nil {
					t.Errorf("final load kernel %d page %d: %v", k, pg, err)
					continue
				}
				if got != ref {
					t.Errorf("page %d: kernel %d reads %d, kernel 0 reads %d", pg, k, got, ref)
				}
			}
		}
	})
	if err := ev.e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestProtocolConcurrentOpsAndFaults mixes layout changes with faulting
// accesses: threads map/unmap regions while others fault pages in them.
// Accesses may legitimately fail with ErrSegv (racing an unmap) but must
// never return a stale value for a page the oracle knows is mapped and
// quiescent, and the engine must never fail.
func TestProtocolConcurrentOpsAndFaults(t *testing.T) {
	ev := newEnv(t, 3, 512)
	sps := ev.group(t, 1)
	done := sim.NewWaitGroup()
	done.Add(3)
	ev.e.Spawn("driver", func(p *sim.Proc) {
		base, err := sps[0].Map(p, 8*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		// Kernel 1 and 2 fault pages continuously.
		for k := 1; k <= 2; k++ {
			k := k
			ev.e.Spawn(fmt.Sprintf("faulter%d", k), func(fp *sim.Proc) {
				defer done.Done()
				rng := rand.New(rand.NewSource(int64(k)))
				for i := 0; i < 60; i++ {
					addr := base + mem.Addr(rng.Intn(8)*hw.PageSize)
					err := sps[k].Store(fp, 2*k, addr, int64(i))
					if err != nil && !isExpectedRace(err) {
						t.Errorf("faulter %d: unexpected error %v", k, err)
						return
					}
				}
			})
		}
		// The origin repeatedly unmaps pages 0-2 while re-protecting page 4.
		ev.e.Spawn("remapper", func(rp *sim.Proc) {
			defer done.Done()
			for i := 0; i < 10; i++ {
				off := mem.Addr((i % 3) * hw.PageSize)
				if err := sps[0].Unmap(rp, base+off, hw.PageSize); err != nil {
					t.Errorf("Unmap: %v", err)
					return
				}
				if err := sps[0].Protect(rp, base+4*hw.PageSize, hw.PageSize, mem.ProtRead); err != nil {
					t.Errorf("Protect: %v", err)
					return
				}
				if err := sps[0].Protect(rp, base+4*hw.PageSize, hw.PageSize, mem.ProtRead|mem.ProtWrite); err != nil {
					t.Errorf("Protect back: %v", err)
					return
				}
			}
		})
		done.Wait(p)
	})
	if err := ev.e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// isExpectedRace reports whether an access error is a legitimate outcome of
// racing a concurrent unmap/mprotect rather than a protocol failure.
func isExpectedRace(err error) bool {
	return errors.Is(err, ErrSegv) || errors.Is(err, ErrAccess)
}

// invalVersionObserver records the directory version carried by every
// page-invalidation committed to the wire.
type invalVersionObserver struct{ versions []uint64 }

func (o *invalVersionObserver) MsgSent(p *sim.Proc, m *msg.Message) {
	if m.Type == msg.TypePageInvalidate && !m.IsReply {
		o.versions = append(o.versions, m.Payload.(*pageInval).Version)
	}
}

func (o *invalVersionObserver) MsgDelivered(p *sim.Proc, m *msg.Message) {}

// TestFanoutInvalidationCarriesVersion pins the write-on-shared revocation
// path: a write while several remote kernels hold read copies fans out
// invalidations via revokeCopies, and each must carry the directory
// transaction version (de.version starts at 1, so zero means the field was
// dropped). Without the version, a delayed grant overtaken by the
// revocation passes resolveFault's grant.Version > pend.invalVersion check
// and installs a stale read copy under fault plans.
func TestFanoutInvalidationCarriesVersion(t *testing.T) {
	ev := newEnv(t, 3, 64)
	obs := &invalVersionObserver{}
	ev.fabric.SetObserver(obs)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		base, err := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Errorf("Map: %v", err)
			return
		}
		// Kernels 1 and 2 take read copies, then kernel 0 writes: the
		// directory must invalidate both remote sharers in one fan-out.
		for k := 1; k <= 2; k++ {
			if _, err := sps[k].Load(p, 2*k, base); err != nil {
				t.Errorf("kernel %d Load: %v", k, err)
				return
			}
		}
		if err := sps[0].Store(p, 0, base, 7); err != nil {
			t.Errorf("Store: %v", err)
		}
	})
	if len(obs.versions) < 2 {
		t.Fatalf("observed %d page invalidations, want >= 2 (fan-out to both sharers)", len(obs.versions))
	}
	for i, v := range obs.versions {
		if v == 0 {
			t.Errorf("invalidation %d carries version 0; fan-out dropped the directory version", i)
		}
	}
}
