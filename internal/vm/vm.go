// Package vm implements the paper's address-space consistency layer: each
// distributed thread group has one authoritative address space at its
// origin kernel and cached replicas on every other kernel hosting group
// members. Layout changes (mmap/munmap/mprotect) are coordinated by the
// origin and pushed to replicas; page contents move on demand under an
// MSI-style ownership protocol with a directory at the origin.
package vm

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sanitize"
	"repro/internal/sim"
	"repro/internal/stats"
)

// GID identifies a distributed thread group (the SSI process) machine-wide.
type GID int64

// mapBase is the first address the anonymous-mapping allocator hands out.
const mapBase mem.Addr = 1 << 32

// Errors reported by address-space operations.
var (
	// ErrSegv is returned for accesses to unmapped addresses.
	ErrSegv = errors.New("vm: segmentation fault (no mapping)")
	// ErrAccess is returned for accesses that violate the VMA protection.
	ErrAccess = errors.New("vm: access violates protection")
	// ErrNoSpace is returned when the hosting kernel's frame partition is
	// exhausted.
	ErrNoSpace = errors.New("vm: out of physical frames")
	// ErrNotAttached is returned when a kernel operates on a group it
	// hosts no replica for.
	ErrNotAttached = errors.New("vm: kernel not attached to group")
	// ErrBadRange is returned for unaligned or empty ranges.
	ErrBadRange = errors.New("vm: bad address range")
)

// FrameSource abstracts the hosting kernel's physical allocator so the
// kernel layer can charge its allocation-lock costs (the SMP baseline
// charges a contended zone lock here; the replicated kernel a local one).
type FrameSource interface {
	// AllocFrame returns a frame and its home NUMA node.
	AllocFrame(p *sim.Proc) (mem.FrameID, int, error)
	// FreeFrame returns a frame to the pool.
	FreeFrame(p *sim.Proc, f mem.FrameID)
}

// pageState is the directory state of one page.
type pageState int

const (
	// pageUnmapped: no kernel holds a copy.
	pageUnmapped pageState = iota
	// pageShared: one or more kernels hold read-only copies.
	pageShared
	// pageModified: exactly one kernel holds a writable copy.
	pageModified
)

// dirEntry is the origin's directory record for one page.
type dirEntry struct {
	state pageState
	// owner is the kernel holding the modified copy (pageModified only).
	owner msg.NodeID
	// sharers holds the kernels with read copies (pageShared only).
	sharers map[msg.NodeID]struct{}
	// value is the origin's record of the page contents as of the last
	// write-back or shared grant; authoritative while state != pageModified.
	value int64
	// reclaimed marks an entry whose last copies were lost when the kernel
	// holding them crashed; the next grant faults the directory's value back
	// from the home node instead of zero-filling.
	reclaimed bool
	// version counts directory transactions on this page; grants and
	// revocations carry it so replicas can order a late grant against the
	// invalidation that overtook it (see pageGrant.Version).
	version uint64
	// mu serialises directory transactions for this page.
	mu *sim.Mutex
}

// pendingFault tracks an in-flight fault on a replica so concurrent faults
// on the same page coalesce and a racing invalidation forces a retry.
type pendingFault struct {
	done        *sim.Cond
	invalidated bool
	// invalVersion is the highest directory version seen on an invalidation
	// while this fault was in flight; layout-level scrubs (munmap,
	// mprotect) set it to ^uint64(0) because they void any grant. A grant
	// with a higher version postdates every revocation observed and may
	// install; anything else retries.
	invalVersion uint64
}

// Space is one kernel's view of a group's address space: the authoritative
// copy at the origin, a cached replica elsewhere.
type Space struct {
	svc      *Service
	gid      GID
	origin   msg.NodeID
	isOrigin bool

	// Replica state (all kernels).
	vmas    *vmaSet
	version uint64
	pt      *mem.PageTable
	values  map[mem.VPN]int64
	pending map[mem.VPN]*pendingFault
	// localThreads counts live group members on this kernel; TLB
	// shootdowns for this space hit at most that many cores (the
	// replicated kernel's mm_cpumask analogue).
	localThreads int
	// lastForwardSwap / lastApplySwap carry a forwarded CAS's outcome
	// between the protocol layers (valid immediately after the call in
	// the run-to-block execution model).
	lastForwardSwap bool
	lastApplySwap   bool

	// Origin-only state.
	asLock  *sim.RWMutex
	dir     map[mem.VPN]*dirEntry
	nextMap mem.Addr
	brk     mem.Addr
	// replicas is the set of kernels that attached a replica (origin
	// excluded); layout updates are pushed to these.
	replicas map[msg.NodeID]struct{}
}

// Service is the per-kernel VM service: it owns this kernel's group spaces
// and serves the consistency-protocol messages.
type Service struct {
	// eagerMapPush, when set on the origin's service, pushes new mappings
	// to replicas synchronously instead of letting them fault and fetch
	// (the D1 ablation; the paper's design is lazy).
	eagerMapPush bool
	// writeForwarding, when set on a replica's service, ships every write
	// to the origin instead of acquiring page ownership (the D5 ablation;
	// the paper's design is ownership migration).
	writeForwarding bool

	e       sim.Engine
	machine *hw.Machine
	//popcornvet:allow kernlocal read-mostly origin-routing and successor tables; handler paths only read them, and promotions mutate them in the serialised handover step
	fabric *msg.Fabric
	node   msg.NodeID
	ep     *msg.Endpoint
	frames FrameSource
	//popcornvet:allow kernlocal commutative counters; updated only from global-lane dispatch, which the parallel engine serialises (DESIGN.md §15)
	metrics *stats.Registry
	spaces  map[GID]*Space
	// localCores is how many cores this kernel drives; TLB shootdowns on a
	// layout change hit all of them.
	localCores int

	// failover, when set, synchronously mirrors every origin-side mutation
	// (directory transactions, layout changes, replica registrations) to the
	// fabric's ring successor so it can promote itself if this kernel dies
	// (DESIGN.md §14). Off by default; fault-free runs pay one bool check
	// per commit.
	failover bool
	// mirrors holds the standby copies this kernel keeps as a replication
	// successor, keyed by group; promoted into authoritative spaces by
	// PromoteOrigin when the origin dies.
	mirrors map[GID]*dirMirror

	// checker, when attached, shadows every grant, revoke and access this
	// kernel performs; nil costs one comparison per hook.
	//popcornvet:allow kernlocal the cross-kernel invariant observer by design; runs in the serialised global-lane phase (DESIGN.md §15)
	checker *sanitize.Checker
	// injectSkipRevoke deliberately breaks the protocol for sanitizer
	// tests: invalidations destined for skipRevokeTarget are silently
	// dropped, leaving stale copies behind.
	injectSkipRevoke bool
	skipRevokeTarget msg.NodeID
}

// NewService creates the kernel's VM service and registers its message
// handlers on the kernel's endpoint.
func NewService(e sim.Engine, machine *hw.Machine, fabric *msg.Fabric, node msg.NodeID, frames FrameSource, localCores int, metrics *stats.Registry) *Service {
	if metrics == nil {
		metrics = stats.NewRegistry()
	}
	s := &Service{
		e:          e,
		machine:    machine,
		fabric:     fabric,
		node:       node,
		ep:         fabric.Endpoint(node),
		frames:     frames,
		metrics:    metrics,
		spaces:     make(map[GID]*Space),
		mirrors:    make(map[GID]*dirMirror),
		localCores: localCores,
	}
	s.ep.Handle(msg.TypeVMAOp, s.handleVMAOp)
	s.ep.Handle(msg.TypeDirReplicate, s.handleDirReplicate)
	s.ep.Handle(msg.TypeVMAUpdate, s.handleVMAUpdate)
	s.ep.Handle(msg.TypeVMAFetch, s.handleVMAFetch)
	s.ep.Handle(msg.TypePageFetch, s.handlePageFetch)
	s.ep.Handle(msg.TypePageInvalidate, s.handlePageInvalidate)
	e.Invariant(fmt.Sprintf("vm.dir.k%d", node), s.checkDirectory)
	return s
}

// checkDirectory is the registered engine invariant for this kernel's page
// directories: every entry's sharer/owner bookkeeping must match its MSI
// state. The engine runs it at quiescence (and periodically when enabled),
// catching protocol bugs at the virtual instant they corrupt the model.
func (s *Service) checkDirectory() error {
	for gid, sp := range s.spaces {
		if !sp.isOrigin {
			continue
		}
		for vpn, de := range sp.dir {
			switch de.state {
			case pageUnmapped:
				if len(de.sharers) != 0 {
					return fmt.Errorf("vm: group %d page %#x unmapped but has %d sharers", gid, uint64(vpn.Base()), len(de.sharers))
				}
			case pageShared:
				if len(de.sharers) == 0 {
					return fmt.Errorf("vm: group %d page %#x shared with no sharers", gid, uint64(vpn.Base()))
				}
			case pageModified:
				if len(de.sharers) != 0 {
					return fmt.Errorf("vm: group %d page %#x modified (owner k%d) but has %d read sharers", gid, uint64(vpn.Base()), de.owner, len(de.sharers))
				}
				if int(de.owner) < 0 || int(de.owner) >= s.fabric.Nodes() {
					return fmt.Errorf("vm: group %d page %#x owned by unknown kernel %d", gid, uint64(vpn.Base()), de.owner)
				}
			default:
				return fmt.Errorf("vm: group %d page %#x in impossible state %d", gid, uint64(vpn.Base()), de.state)
			}
		}
	}
	return nil
}

// Node returns the kernel this service runs on.
func (s *Service) Node() msg.NodeID { return s.node }

// homeCoreHint returns a representative local core for costing handler-side
// accesses.
func (s *Service) homeCoreHint() int {
	return int(s.node) * s.localCores
}

// Metrics returns the registry this service records into.
func (s *Service) Metrics() *stats.Registry { return s.metrics }

// LocalCores returns how many cores this kernel drives.
func (s *Service) LocalCores() int { return s.localCores }

// SetEagerMapPush toggles synchronous propagation of new mappings (the D1
// ablation). Call before running workloads.
func (s *Service) SetEagerMapPush(on bool) { s.eagerMapPush = on }

// SetWriteForwarding toggles forwarding of this kernel's writes to group
// origins instead of migrating page ownership here (the D5 ablation). Call
// before running workloads.
func (s *Service) SetWriteForwarding(on bool) { s.writeForwarding = on }

// AttachChecker wires the coherence sanitizer into this kernel's VM
// service; nil detaches it. Attach before running workloads (mid-run
// attachment misses earlier grants and reports them as no-grant accesses).
func (s *Service) AttachChecker(c *sanitize.Checker) { s.checker = c }

// InjectSkipRevoke deliberately breaks this (origin) kernel's directory:
// invalidations destined for node are silently skipped, leaving stale
// copies behind. It exists so tests and popcornmc can prove the sanitizer
// catches a protocol bug; never enable it outside checking runs.
func (s *Service) InjectSkipRevoke(node msg.NodeID) {
	s.injectSkipRevoke = true
	s.skipRevokeTarget = node
}

// Create sets up a new, empty authoritative address space for gid with this
// kernel as origin.
func (s *Service) Create(gid GID) (*Space, error) {
	if _, dup := s.spaces[gid]; dup {
		return nil, fmt.Errorf("vm: group %d already present on kernel %d", gid, s.node)
	}
	sp := &Space{
		svc:      s,
		gid:      gid,
		origin:   s.node,
		isOrigin: true,
		vmas:     &vmaSet{},
		pt:       mem.NewPageTable(),
		values:   make(map[mem.VPN]int64),
		pending:  make(map[mem.VPN]*pendingFault),
		asLock:   sim.NewRWMutex(s.e).SetLabel(fmt.Sprintf("vm.asLock.g%d", gid)),
		dir:      make(map[mem.VPN]*dirEntry),
		nextMap:  mapBase,
		brk:      heapBase,
		replicas: make(map[msg.NodeID]struct{}),
	}
	s.spaces[gid] = sp
	return sp, nil
}

// Attach sets up a cached replica of gid's address space (whose origin is
// elsewhere). The thread-group layer calls this when a kernel is about to
// host its first member of the group; the origin learns of the replica from
// the group-setup message, so Attach itself is local.
func (s *Service) Attach(gid GID, origin msg.NodeID) (*Space, error) {
	if origin == s.node {
		return nil, fmt.Errorf("vm: Attach with self as origin for group %d", gid)
	}
	if _, dup := s.spaces[gid]; dup {
		return nil, fmt.Errorf("vm: group %d already present on kernel %d", gid, s.node)
	}
	sp := &Space{
		svc:     s,
		gid:     gid,
		origin:  origin,
		vmas:    &vmaSet{},
		pt:      mem.NewPageTable(),
		values:  make(map[mem.VPN]int64),
		pending: make(map[mem.VPN]*pendingFault),
	}
	s.spaces[gid] = sp
	return sp, nil
}

// RegisterReplica records (at the origin) that node now hosts a replica and
// must receive layout updates.
func (s *Service) RegisterReplica(gid GID, node msg.NodeID) error {
	sp, ok := s.spaces[gid]
	if !ok || !sp.isOrigin {
		return fmt.Errorf("vm: RegisterReplica on kernel %d which is not origin of group %d", s.node, gid)
	}
	sp.replicas[node] = struct{}{}
	return nil
}

// Space returns this kernel's space for gid, if attached.
func (s *Service) Space(gid GID) (*Space, bool) {
	sp, ok := s.spaces[gid]
	return sp, ok
}

// Drop discards this kernel's space for gid, freeing all locally held
// frames. Used at group exit.
func (s *Service) Drop(p *sim.Proc, gid GID) {
	sp, ok := s.spaces[gid]
	if !ok {
		return
	}
	for vpn := range sp.values {
		if pte, ok := sp.pt.Lookup(vpn); ok && pte.Frame != mem.NoFrame {
			s.frames.FreeFrame(p, pte.Frame)
		}
	}
	delete(s.spaces, gid)
}

// Reboot discards every space this kernel hosts, for a kernel reboot after
// a crash. Unlike Drop it does not free frames one by one: the physical
// allocator is reset wholesale by the reboot (a crashed kernel's frame
// bookkeeping is gone), so per-page frees would double-free.
func (s *Service) Reboot() {
	s.spaces = make(map[GID]*Space)
	s.mirrors = make(map[GID]*dirMirror)
}

// PeerDied reclaims, on every origin directory this kernel hosts, the page
// ownership and read copies held by a crashed kernel: modified pages lose
// their (never written back) exclusive copy and fall back to the directory's
// last value; the dead kernel leaves every sharer set. Runs from the fabric's
// failure-degradation hook once the local detector declares the peer dead.
func (s *Service) PeerDied(p *sim.Proc, dead msg.NodeID) {
	// Promotion first: rebuilding the dead origin's directories from the
	// replication mirrors purges the dead kernel's copies itself (keeping
	// the logged values), so the reclaim sweep below finds nothing to lose
	// on the promoted spaces.
	s.PromoteOrigin(dead)
	gids := make([]GID, 0, len(s.spaces))
	for gid := range s.spaces {
		gids = append(gids, gid)
	}
	sortGIDsVM(gids)
	for _, gid := range gids {
		sp, ok := s.spaces[gid]
		if !ok || !sp.isOrigin {
			continue
		}
		delete(sp.replicas, dead)
		// Snapshot the entries: transactions racing with this sweep can add
		// fresh pages, but a fresh entry cannot involve the dead kernel.
		vpns := make([]mem.VPN, 0, len(sp.dir))
		for vpn := range sp.dir {
			vpns = append(vpns, vpn)
		}
		sortVPNs(vpns)
		for _, vpn := range vpns {
			de := sp.dir[vpn]
			de.mu.Lock(p)
			switch {
			case de.state == pageModified && de.owner == dead:
				de.state = pageUnmapped
				de.owner = 0
				de.reclaimed = true
				s.metrics.Counter("vm.pages.reclaimed").Inc()
			case de.state == pageShared:
				if _, held := de.sharers[dead]; held {
					delete(de.sharers, dead)
					if len(de.sharers) == 0 {
						de.state = pageUnmapped
						de.sharers = nil
						de.reclaimed = true
					}
					s.metrics.Counter("vm.pages.reclaimed").Inc()
				}
			}
			de.mu.Unlock(p)
		}
	}
}

func sortGIDsVM(gids []GID) {
	for i := 1; i < len(gids); i++ {
		for j := i; j > 0 && gids[j] < gids[j-1]; j-- {
			gids[j], gids[j-1] = gids[j-1], gids[j]
		}
	}
}

func sortVPNs(vpns []mem.VPN) {
	for i := 1; i < len(vpns); i++ {
		for j := i; j > 0 && vpns[j] < vpns[j-1]; j-- {
			vpns[j], vpns[j-1] = vpns[j-1], vpns[j]
		}
	}
}

// GID returns the group this space belongs to.
func (sp *Space) GID() GID { return sp.gid }

// AttachChecker wires the coherence sanitizer in via this space's service
// (all spaces on a kernel share the hook). Nil detaches.
func (sp *Space) AttachChecker(c *sanitize.Checker) { sp.svc.AttachChecker(c) }

// Origin returns the group's origin kernel.
func (sp *Space) Origin() msg.NodeID { return sp.origin }

// Version returns the replica's layout version.
func (sp *Space) Version() uint64 { return sp.version }

// MappedAreas returns a copy of the locally known VMA list.
func (sp *Space) MappedAreas() []VMA {
	return append([]VMA(nil), sp.vmas.areas...)
}

// ResidentPages returns how many pages this kernel has copies of.
func (sp *Space) ResidentPages() int { return len(sp.values) }

// ThreadArrived records a live group member on this kernel (clone or
// inbound migration); ThreadLeft records an exit or outbound migration.
// The thread-group layer maintains these so shootdown costs track the
// cores that can actually cache this space's translations.
func (sp *Space) ThreadArrived() { sp.localThreads++ }

// ThreadLeft undoes ThreadArrived.
func (sp *Space) ThreadLeft() {
	if sp.localThreads > 0 {
		sp.localThreads--
	}
}

// shootdownCores returns how many remote cores a local mapping change must
// interrupt.
func (sp *Space) shootdownCores() int {
	n := sp.localThreads
	if n > sp.svc.localCores {
		n = sp.svc.localCores
	}
	if n <= 1 {
		return 0
	}
	return n - 1
}
