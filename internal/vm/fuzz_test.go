package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sanitize"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FuzzVMASet drives the VMA set with an op stream decoded from fuzz input
// and checks the structural invariants after every step. Run with
// `go test -fuzz=FuzzVMASet ./internal/vm` for continuous fuzzing; the
// seed corpus below runs as ordinary unit tests.
func FuzzVMASet(f *testing.F) {
	f.Add([]byte{0, 10, 4, 1, 12, 2, 2, 8, 8})
	f.Add([]byte{0, 0, 1, 0, 0, 1, 1, 0, 1})
	f.Add([]byte{2, 5, 3, 0, 5, 3, 1, 5, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &vmaSet{}
		oracle := make(map[mem.VPN]mem.Prot)
		prots := []mem.Prot{mem.ProtRead, mem.ProtRead | mem.ProtWrite, 0}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 3
			lo := mem.VPN(data[i+1] % 64)
			hi := lo + mem.VPN(data[i+2]%8) + 1
			prot := prots[int(data[i])%len(prots)]
			switch op {
			case 0:
				if !s.overlaps(lo, hi) {
					if err := s.insert(VMA{Lo: lo, Hi: hi, Prot: prot}); err != nil {
						t.Fatalf("insert on free range failed: %v", err)
					}
					for v := lo; v < hi; v++ {
						oracle[v] = prot
					}
				}
			case 1:
				s.remove(lo, hi)
				for v := lo; v < hi; v++ {
					delete(oracle, v)
				}
			case 2:
				s.protect(lo, hi, prot)
				for v := lo; v < hi; v++ {
					if _, ok := oracle[v]; ok {
						oracle[v] = prot
					}
				}
			}
			if err := s.invariantErr(); err != nil {
				t.Fatalf("invariant after op %d: %v (%v)", i/3, err, s)
			}
		}
		// Final agreement with the page oracle.
		for v := mem.VPN(0); v < 80; v++ {
			area, mapped := s.find(v)
			wantProt, wantMapped := oracle[v]
			if mapped != wantMapped || (mapped && area.Prot != wantProt) {
				t.Fatalf("page %d: set=(%v,%v) oracle=(%v,%v)", v, area.Prot, mapped, wantProt, wantMapped)
			}
		}
	})
}

// FuzzCoherenceSanitized drives the distributed page protocol with the
// coherence sanitizer attached: two kernels hammer a small window of shared
// pages with loads, stores, CAS and fetch-add decoded from the fuzz input,
// under a tie-shuffled (seeded) event schedule. With an intact directory the
// sanitizer must stay silent — any coherence violation is a real protocol
// bug, not a property of the input. With the skip-revoke fault injected the
// run must survive (no deadlock, no unexpected error) and every reported
// violation must be well-formed.
//
// The seed corpus includes the shrunk repro popcornmc finds for the
// injected bug: store at the origin, replicate to k1, upgrade at the origin
// with the invalidation dropped.
func FuzzCoherenceSanitized(f *testing.F) {
	// Minimal skip-revoke repro (seed 1): store k0, load k1, store k0.
	f.Add(uint8(1), true, []byte{0x01, 7, 0x04, 0, 0x01, 9})
	// Same schedule, intact directory: must be clean.
	f.Add(uint8(1), false, []byte{0x01, 7, 0x04, 0, 0x01, 9})
	// Mixed RMW traffic across two pages and both kernels.
	f.Add(uint8(42), false, []byte{0x02, 1, 0x06, 1, 0x0b, 3, 0x0f, 5, 0x08, 0, 0x01, 2})
	f.Fuzz(func(t *testing.T, seed uint8, inject bool, data []byte) {
		if len(data) > 128 {
			data = data[:128]
		}
		ev := newEnv(t, 2, 64, sim.WithSeed(int64(seed)+1), sim.WithTieShuffle())
		buf := trace.NewBuffer(512)
		ck := attachSanitizer(ev, sanitize.Config{Trace: buf})
		if inject {
			ev.svcs[0].InjectSkipRevoke(1)
		}
		sps := ev.group(t, 1)

		const pages = 8
		// Split the op stream per kernel so the two workers run their halves
		// concurrently: cross-kernel protocol traffic under a shuffled
		// schedule is where coherence bugs live.
		var streams [2][]byte
		for i := 0; i+1 < len(data); i += 2 {
			k := (data[i] >> 2) & 1
			streams[k] = append(streams[k], data[i], data[i+1])
		}
		ev.run(t, func(p *sim.Proc) {
			addr, err := sps[0].Map(p, pages*hw.PageSize, mem.ProtRead|mem.ProtWrite)
			if err != nil {
				t.Errorf("Map: %v", err)
				return
			}
			for k := 0; k < 2; k++ {
				k := k
				ops := streams[k]
				core := k * 2 // env kernels sit on cores 0 and 2
				sp := sps[k]
				ev.e.Spawn("fuzz-worker", func(p *sim.Proc) {
					for i := 0; i+1 < len(ops); i += 2 {
						a := addr + mem.Addr((ops[i]>>3)%pages)*hw.PageSize
						val := int64(ops[i+1])
						var err error
						switch ops[i] & 3 {
						case 0:
							_, err = sp.Load(p, core, a)
						case 1:
							err = sp.Store(p, core, a, val)
						case 2:
							_, err = sp.CompareAndSwap(p, core, a, val%4, val)
						default:
							_, err = sp.FetchAdd(p, core, a, val)
						}
						if err != nil {
							t.Errorf("k%d op %d: %v", k, i/2, err)
							return
						}
					}
				})
			}
		})

		vs := ck.Violations()
		if !inject && len(vs) != 0 {
			t.Fatalf("coherence violations on an intact directory:\n%s", ck.Report())
		}
		for _, v := range vs {
			if v.Kind == "" || v.GID != 1 || v.Detail == "" {
				t.Fatalf("malformed violation %+v", v)
			}
		}
	})
}
