package vm

import (
	"testing"

	"repro/internal/mem"
)

// FuzzVMASet drives the VMA set with an op stream decoded from fuzz input
// and checks the structural invariants after every step. Run with
// `go test -fuzz=FuzzVMASet ./internal/vm` for continuous fuzzing; the
// seed corpus below runs as ordinary unit tests.
func FuzzVMASet(f *testing.F) {
	f.Add([]byte{0, 10, 4, 1, 12, 2, 2, 8, 8})
	f.Add([]byte{0, 0, 1, 0, 0, 1, 1, 0, 1})
	f.Add([]byte{2, 5, 3, 0, 5, 3, 1, 5, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &vmaSet{}
		oracle := make(map[mem.VPN]mem.Prot)
		prots := []mem.Prot{mem.ProtRead, mem.ProtRead | mem.ProtWrite, 0}
		for i := 0; i+2 < len(data); i += 3 {
			op := data[i] % 3
			lo := mem.VPN(data[i+1] % 64)
			hi := lo + mem.VPN(data[i+2]%8) + 1
			prot := prots[int(data[i])%len(prots)]
			switch op {
			case 0:
				if !s.overlaps(lo, hi) {
					if err := s.insert(VMA{Lo: lo, Hi: hi, Prot: prot}); err != nil {
						t.Fatalf("insert on free range failed: %v", err)
					}
					for v := lo; v < hi; v++ {
						oracle[v] = prot
					}
				}
			case 1:
				s.remove(lo, hi)
				for v := lo; v < hi; v++ {
					delete(oracle, v)
				}
			case 2:
				s.protect(lo, hi, prot)
				for v := lo; v < hi; v++ {
					if _, ok := oracle[v]; ok {
						oracle[v] = prot
					}
				}
			}
			if err := s.invariantErr(); err != nil {
				t.Fatalf("invariant after op %d: %v (%v)", i/3, err, s)
			}
		}
		// Final agreement with the page oracle.
		for v := mem.VPN(0); v < 80; v++ {
			area, mapped := s.find(v)
			wantProt, wantMapped := oracle[v]
			if mapped != wantMapped || (mapped && area.Prot != wantProt) {
				t.Fatalf("page %d: set=(%v,%v) oracle=(%v,%v)", v, area.Prot, mapped, wantProt, wantMapped)
			}
		}
	})
}
