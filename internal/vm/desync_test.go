package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/sim"
)

// TestFaultSelfHealsDirectoryDesync pins the NoCopy repair path: when the
// origin's directory lists a replica as a sharer of a page the replica never
// installed (an abandoned prefetch or a failed install left the directory
// ahead of the page table), a demand fault must disclaim the phantom copy
// and settle with a real transfer instead of redrawing a have-copy grant
// until the retry bound trips.
func TestFaultSelfHealsDirectoryDesync(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[0].Map(p, hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		if _, err := sps[1].Load(p, 2, addr); err != nil {
			t.Fatalf("first Load: %v", err)
		}
		// Strip the replica's copy behind the directory's back, exactly the
		// state a failed install leaves: origin says sharer, page table says
		// nothing.
		vpn := mem.PageOf(addr)
		pte, ok := sps[1].pt.Lookup(vpn)
		if !ok {
			t.Fatal("replica has no PTE after Load")
		}
		sps[1].pt.Clear(vpn)
		ev.allocs[1].Free(pte.Frame)
		delete(sps[1].values, vpn)

		if v, err := sps[1].Load(p, 2, addr); err != nil || v != 0 {
			t.Fatalf("Load after desync = %d, %v; want 0, nil", v, err)
		}
	})
	if got := ev.svcs[1].metrics.Counter("vm.fault.desync").Value(); got == 0 {
		t.Error("replica never observed the have-copy miss (vm.fault.desync = 0)")
	}
	if got := ev.svcs[0].metrics.Counter("vm.dir.desync_repaired").Value(); got == 0 {
		t.Error("origin never repaired the stale sharer entry (vm.dir.desync_repaired = 0)")
	}
}

// TestPrefetchStopsAtHole pins the batch-contiguity rule: the origin records
// a sharer for every page of a (VPN, Count) batch grant, so a prefetch must
// not span a page it will not install. With page 1 already resident, a
// prefetch of pages 0..3 may install only page 0 — never pages 2 and 3
// across the hole.
func TestPrefetchStopsAtHole(t *testing.T) {
	ev := newEnv(t, 2, 64)
	sps := ev.group(t, 1)
	ev.run(t, func(p *sim.Proc) {
		addr, err := sps[0].Map(p, 4*hw.PageSize, mem.ProtRead|mem.ProtWrite)
		if err != nil {
			t.Fatalf("Map: %v", err)
		}
		if _, err := sps[1].Load(p, 2, addr+hw.PageSize); err != nil {
			t.Fatalf("Load: %v", err)
		}
		n, err := sps[1].Prefetch(p, 2, addr, 4)
		if err != nil {
			t.Fatalf("Prefetch: %v", err)
		}
		if n != 1 {
			t.Fatalf("Prefetch installed %d pages, want 1 (stop at the resident hole)", n)
		}
		for i, want := range []bool{true, true, false, false} {
			if _, ok := sps[1].pt.Lookup(mem.PageOf(addr) + mem.VPN(i)); ok != want {
				t.Errorf("page %d resident = %v, want %v", i, ok, want)
			}
		}
	})
}
