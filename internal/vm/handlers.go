package vm

import (
	"errors"
	"fmt"

	"repro/internal/hw"

	"repro/internal/msg"
	"repro/internal/sim"
)

// handleVMAOp serves a forwarded layout operation at the origin.
func (s *Service) handleVMAOp(p *sim.Proc, m *msg.Message) *msg.Message {
	req := m.Payload.(*vmaOpReq)
	sp, ok := s.spaces[req.GID]
	if !ok || !sp.isOrigin {
		return &msg.Message{Size: sizeVMAReply, Payload: &vmaOpReply{Err: fmt.Sprintf("kernel %d is not origin of group %d", s.node, req.GID)}}
	}
	reply := &vmaOpReply{}
	var err error
	switch req.Op {
	case opMap:
		reply.Addr, err = sp.originMap(p, req.Length, req.Prot)
	case opUnmap:
		err = sp.originUnmap(p, req.Addr, req.Length)
	case opProtect:
		err = sp.originProtect(p, req.Addr, req.Length, req.Prot)
	case opBrk:
		reply.Addr, err = sp.originSbrk(p, int64(req.Length))
	default:
		err = fmt.Errorf("unknown vma op %d", req.Op)
	}
	if err != nil {
		reply.Err = err.Error()
	}
	reply.Version = sp.version
	return &msg.Message{Size: sizeVMAReply, Payload: reply}
}

// handleVMAUpdate applies a pushed layout change on a replica.
func (s *Service) handleVMAUpdate(p *sim.Proc, m *msg.Message) *msg.Message {
	u := m.Payload.(*vmaUpdate)
	sp, ok := s.spaces[u.GID]
	if !ok {
		// The replica was dropped concurrently (group exit); ack anyway.
		return &msg.Message{Size: sizeSmallReq, Payload: &vmaOpReply{}}
	}
	switch u.Op {
	case opMap:
		// Eager-push ablation: pre-populate the replica's VMA cache.
		sp.cacheVMA(VMA{Lo: u.Lo, Hi: u.Hi, Prot: u.Prot}, u.Version)
	case opUnmap:
		sp.vmas.remove(u.Lo, u.Hi)
		sp.scrubLocal(p, u.Lo, u.Hi)
	case opProtect:
		sp.vmas.protect(u.Lo, u.Hi, u.Prot)
		sp.applyProtectLocal(p, u.Lo, u.Hi, u.Prot)
	}
	if u.Version > sp.version {
		sp.version = u.Version
	}
	s.checker.LayoutApplied(s.node, int64(u.GID), sp.version)
	return &msg.Message{Size: sizeSmallReq, Payload: &vmaOpReply{Version: sp.version}}
}

// handleVMAFetch serves a replica's VMA cache miss at the origin.
func (s *Service) handleVMAFetch(p *sim.Proc, m *msg.Message) *msg.Message {
	req := m.Payload.(*vmaFetchReq)
	sp, ok := s.spaces[req.GID]
	if !ok || !sp.isOrigin {
		return &msg.Message{Size: sizeVMAReply, Payload: &vmaFetchReply{}}
	}
	sp.asLock.RLock(p)
	defer sp.asLock.RUnlock(p)
	vma, found := sp.vmas.find(req.VPN)
	reply := &vmaFetchReply{OK: found, VMA: vma, Version: sp.version}
	if req.WantOwner && found {
		reply.Owner = sp.ownerOf(req.VPN)
	}
	return &msg.Message{Size: sizeVMAReply, Payload: reply}
}

// handlePageFetch runs a directory transaction at the origin on behalf of a
// remote faulting kernel.
func (s *Service) handlePageFetch(p *sim.Proc, m *msg.Message) *msg.Message {
	req := m.Payload.(*pageFetchReq)
	sp, ok := s.spaces[req.GID]
	if !ok || !sp.isOrigin {
		return &msg.Message{Size: sizeVMAReply, Payload: &pageGrant{Code: codeOther, Err: fmt.Sprintf("kernel %d is not origin of group %d", s.node, req.GID)}}
	}
	// Count > 0 marks a prefetch (demand faults leave it zero). A
	// single-page prefetch must still take the batch path: the requester
	// installs from grant.Batch, and answering it with a scalar grant would
	// record a sharer that never materialises.
	if req.Count > 0 {
		sp.asLock.RLock(p)
		//popcornvet:allow locksend the shared asLock orders remote faults against concurrent VMA updates; the revocation handlers it can trigger touch only remote page tables and never take the origin asLock
		grant := sp.batchTransactions(p, m.From, req.VPN, req.Count)
		sp.asLock.RUnlock(p)
		size := sizeVMAReply
		for _, be := range grant.Batch {
			if be.Code == codeOK {
				size += hw.PageSize
			}
		}
		return &msg.Message{Size: size, Payload: grant}
	}
	if req.Forward != fwdNone {
		val, err := sp.applyForwarded(p, req)
		//popcornvet:allow dirver a forwarded-op reply installs no page copy (srcApplied); there is nothing for the replica to order
		grant := &pageGrant{Value: val, Src: srcApplied, Swapped: sp.lastApplySwap}
		if err != nil {
			grant = forwardedError(err)
		}
		return &msg.Message{Size: sizeVMAReply, Payload: grant}
	}
	sp.asLock.RLock(p)
	//popcornvet:allow locksend the shared asLock orders remote faults against concurrent VMA updates; the revocation handlers it can trigger touch only remote page tables and never take the origin asLock
	grant, err := sp.dirTransaction(p, m.From, req.VPN, req.Write, req.NoCopy)
	sp.asLock.RUnlock(p)
	if err != nil {
		grant = &pageGrant{Code: codeOther, Err: err.Error()}
	}
	return &msg.Message{Size: grantSize(grant), Payload: grant}
}

// forwardedError maps a local access error onto a grant.
func forwardedError(err error) *pageGrant {
	switch {
	case errors.Is(err, ErrSegv):
		return &pageGrant{Code: codeSegv, Err: err.Error()}
	case errors.Is(err, ErrAccess):
		return &pageGrant{Code: codeAccess, Err: err.Error()}
	default:
		return &pageGrant{Code: codeOther, Err: err.Error()}
	}
}

// handlePageInvalidate revokes this kernel's copy of a page on the origin's
// behalf.
func (s *Service) handlePageInvalidate(p *sim.Proc, m *msg.Message) *msg.Message {
	req := m.Payload.(*pageInval)
	sp, ok := s.spaces[req.GID]
	if !ok {
		ack := &pageInvalAck{}
		return &msg.Message{Size: invalAckSize(ack), Payload: ack}
	}
	// A full invalidation of a writable copy destroys the page's only
	// current contents: after applyInval the value exists solely in the ack
	// on its way to the origin, and an origin crash in that window would
	// strand the mirror one write behind. With failover on, the surrendering
	// owner closes the window itself: it ships the value to the holder's
	// successor *before* releasing the ack, so the mirror is never behind a
	// value the directory has committed to.
	surrender := false
	if s.failover && !req.Downgrade {
		if pte, held := sp.pt.Lookup(req.VPN); held && pte.Prot.Writable() {
			surrender = true
		}
	}
	ack := sp.applyInval(p, req.VPN, req.Downgrade, req.Version)
	if surrender && ack.HadCopy {
		s.shipSurrender(p, req.GID, req.VPN, ack.Value, req.Version)
	}
	return &msg.Message{Size: invalAckSize(&ack), Payload: &ack}
}
