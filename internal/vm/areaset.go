package vm

import "repro/internal/mem"

// AreaSet is an exported façade over the VMA set for the baseline OSes
// (the SMP baseline manages one process-wide VMA tree with the same
// split/merge semantics, just without replication).
type AreaSet struct {
	s vmaSet
}

// Insert adds a non-overlapping area.
func (a *AreaSet) Insert(v VMA) error { return a.s.insert(v) }

// Remove unmaps [lo, hi), returning the previously mapped sub-ranges.
func (a *AreaSet) Remove(lo, hi mem.VPN) []VMA { return a.s.remove(lo, hi) }

// Protect re-protects mapped pages in [lo, hi), returning changed ranges.
func (a *AreaSet) Protect(lo, hi mem.VPN, prot mem.Prot) []VMA { return a.s.protect(lo, hi, prot) }

// Find returns the area containing the page.
func (a *AreaSet) Find(p mem.VPN) (VMA, bool) { return a.s.find(p) }

// Covered reports whether [lo, hi) is fully mapped.
func (a *AreaSet) Covered(lo, hi mem.VPN) bool { return a.s.covered(lo, hi) }

// Len returns the number of areas.
func (a *AreaSet) Len() int { return a.s.len() }
