package vm

import (
	"sort"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/msg"
)

// vmaOp enumerates the layout operations forwarded to the origin.
type vmaOp int

const (
	opMap vmaOp = iota + 1
	opUnmap
	opProtect
	opBrk
)

// Wire payload sizes (bytes) for message costing. Headers and small fixed
// requests fit one or two cache lines; page grants carry the page itself.
const (
	sizeSmallReq  = 64
	sizeVMAReply  = 96
	sizePageGrant = hw.PageSize + 64
)

// vmaOpReq forwards a layout operation from a remote kernel to the origin.
type vmaOpReq struct {
	GID    GID
	Op     vmaOp
	Addr   mem.Addr
	Length uint64
	Prot   mem.Prot
}

// vmaOpReply returns the operation result to the remote kernel.
type vmaOpReply struct {
	Addr    mem.Addr
	Version uint64
	Err     string
}

// vmaUpdate pushes a committed layout change from the origin to a replica.
type vmaUpdate struct {
	GID     GID
	Op      vmaOp
	Lo, Hi  mem.VPN
	Prot    mem.Prot
	Version uint64
}

// vmaFetchReq asks the origin for the VMA covering a page, or (WantOwner)
// for the kernel currently holding the page's data.
type vmaFetchReq struct {
	GID       GID
	VPN       mem.VPN
	WantOwner bool
}

// vmaFetchReply returns the covering VMA, if one exists, and (for owner
// queries) the holding kernel.
type vmaFetchReply struct {
	OK      bool
	VMA     VMA
	Version uint64
	Owner   msg.NodeID
}

// Forwarded-write operation codes (the D5 ablation: remote kernels ship
// writes to the origin instead of taking page ownership).
const (
	fwdNone = iota
	fwdStore
	fwdCAS
	fwdFetchAdd
)

// pageFetchReq asks the origin's directory for access to a page, or (when
// Forward is set) asks the origin to apply the write on the requester's
// behalf, or (Count > 1) for a read-only batch grant of Count consecutive
// pages (the prefetch path: one round trip instead of Count).
type pageFetchReq struct {
	GID   GID
	VPN   mem.VPN
	Write bool
	Count int
	// NoCopy declares that the requester holds no copy of the page even if
	// the directory lists it as a sharer. A faulting kernel sets it after a
	// grant assumed a copy it does not have (an abandoned prefetch or a
	// failed install left the directory ahead of the page table); the origin
	// then drops the stale sharer entry so the regrant carries the data.
	NoCopy bool
	// Forward selects a remotely applied operation (fwd* codes); Addr, Val
	// and Old are its operands.
	Forward int
	Addr    mem.Addr
	Val     int64
	Old     int64
}

// batchEntry is one page's grant inside a batched (prefetch) reply.
type batchEntry struct {
	Code  int
	Value int64
	Src   int
	Prot  mem.Prot
}

// Grant data-source markers.
const (
	srcZeroFill = -1 // first touch: requester zero-fills a local frame
	srcHaveCopy = -2 // requester already holds the data (upgrade)
	srcApplied  = -3 // the origin applied the operation remotely; nothing to install
)

// Grant error codes, preserving error identity across the wire.
const (
	codeOK = iota
	codeSegv
	codeAccess
	codeOther
)

// pageGrant is the directory's response to a fault.
type pageGrant struct {
	Err  string
	Code int
	// Swapped reports a forwarded CAS's outcome.
	Swapped bool
	// Batch carries per-page grants for a prefetch request.
	Batch []batchEntry
	// Value is the page contents (the simulation's one-word proxy).
	Value int64
	// Src is the kernel the data came from, or srcZeroFill / srcHaveCopy.
	Src int
	// Prot is the protection to install (write bit present iff exclusive).
	Prot mem.Prot
	// Version is the directory entry's transaction counter at grant time.
	// A replica discards a grant older than the latest invalidation it has
	// seen for the page — without FIFO delivery (fault plans delay and
	// retransmit), the version is the only way to order a late grant
	// against the revocation that overtook it.
	Version uint64
}

// pageInval revokes or downgrades a copy at its destination kernel.
type pageInval struct {
	GID GID
	VPN mem.VPN
	// Downgrade keeps a read-only copy instead of discarding it.
	Downgrade bool
	// Version is the directory transaction this revocation belongs to; see
	// pageGrant.Version.
	Version uint64
}

// pageInvalAck acknowledges an invalidation, carrying the written-back
// contents when the destination held a modified copy.
type pageInvalAck struct {
	Value   int64
	HadCopy bool
}

// grantSize returns the reply size for a grant (page data included only
// when contents actually travel).
func grantSize(g *pageGrant) int {
	if g.Src >= 0 {
		return sizePageGrant
	}
	return sizeVMAReply
}

// invalAckSize returns the ack size (page data included on write-back).
func invalAckSize(a *pageInvalAck) int {
	if a.HadCopy {
		return sizePageGrant
	}
	return sizeSmallReq
}

// nodeSet returns the keys of a node set as a slice, excluding skip.
func nodeSet(m map[msg.NodeID]struct{}, skip msg.NodeID) []msg.NodeID {
	out := make([]msg.NodeID, 0, len(m))
	for n := range m {
		if n != skip {
			out = append(out, n)
		}
	}
	// Deterministic order for reproducible schedules.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
