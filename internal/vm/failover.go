package vm

// Origin failover for the address-space layer (DESIGN.md §14). When the
// failover plane is enabled, every committed mutation of an origin's
// authoritative state — directory-entry transitions, VMA layout changes,
// replica-set registrations — is synchronously mirrored to the origin's
// ring successor over TypeDirReplicate (control lane, so the flow plane
// cannot starve the replication stream). The successor keeps a passive
// standby copy per group; when the failure detector declares the origin
// dead, PromoteOrigin rebuilds authoritative spaces from the mirrors,
// purging the dead kernel's page copies from the directory *before* the
// generic reclaim sweep runs — so a crash with a live successor loses no
// directory-known page contents (vm.pages.reclaimed stays zero for the
// failed-over groups).

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
)

// originKernelShift is the GID bit split the thread-group layer uses to
// partition the ID space by allocating kernel (threadgroup's pidShift).
const originKernelShift = 44

// OriginKernelOf returns the kernel that allocated gid — the group's
// boot-time origin. The thread-group layer partitions the GID space by
// kernel in the high bits, so the original origin role is recoverable from
// the ID alone even after a failover re-homes the group. Epoch stamping
// keys on this role, not on the current holder.
func OriginKernelOf(gid GID) msg.NodeID {
	return msg.NodeID(int64(gid) >> originKernelShift)
}

// Replication record kinds carried by dirRepl.
const (
	// replEntry ships the post-transaction snapshot of one directory entry.
	replEntry = 1
	// replLayout ships one committed VMA layout mutation plus the allocator
	// cursors (nextMap, brk) needed to continue allocation after promotion.
	replLayout = 2
	// replReplica ships a replica-set registration.
	replReplica = 3
	// replValue patches a mirrored entry's value without touching its
	// protocol state: a revokee preserving the Modified copy it is about to
	// surrender, in case the revoking origin dies with the ack in flight.
	replValue = 4
)

// dirRepl is one origin-side mutation shipped to the successor. Exactly one
// of the kind-specific field groups is meaningful, selected by Kind.
type dirRepl struct {
	Kind   int
	GID    GID
	Origin msg.NodeID

	// replEntry: the entry's full post-transaction state.
	VPN       mem.VPN
	State     int
	Owner     msg.NodeID
	Sharers   []msg.NodeID
	Value     int64
	Version   uint64
	Reclaimed bool

	// replLayout: the committed mutation (opMap inserts [Lo,Hi), opUnmap
	// removes it, opProtect re-protects it) and the allocator cursors.
	Op            vmaOp
	Lo, Hi        mem.VPN
	Prot          mem.Prot
	LayoutVersion uint64
	NextMap       mem.Addr
	Brk           mem.Addr

	// replReplica: a kernel that attached a replica.
	Replica msg.NodeID
}

// mirrorEntry is the successor's passive copy of one directory entry.
type mirrorEntry struct {
	state     pageState
	owner     msg.NodeID
	sharers   []msg.NodeID
	value     int64
	version   uint64
	reclaimed bool
}

// dirMirror is the successor's standby copy of one origin's space: enough
// directory, layout and replica-set state to rebuild an authoritative Space
// if the origin dies.
type dirMirror struct {
	origin   msg.NodeID
	entries  map[mem.VPN]*mirrorEntry
	vmas     *vmaSet
	version  uint64
	nextMap  mem.Addr
	brk      mem.Addr
	replicas map[msg.NodeID]struct{}
}

// EnableFailover turns on origin replication for this kernel's spaces:
// every directory transaction, layout mutation and replica registration on
// an origin space is synchronously shipped to the fabric's ring successor.
// Call after boot, before the workload runs; the fabric's failover plane
// (msg.Fabric.EnableFailover) must be enabled too.
func (s *Service) EnableFailover() { s.failover = true }

// FailoverEnabled reports whether origin replication is on.
func (s *Service) FailoverEnabled() bool { return s.failover }

// shipRepl synchronously delivers one replication record to the successor.
// Control-lane traffic bypasses credits and the circuit breaker, so the
// only possible failure is a dead successor — then the record is skipped
// and the origin keeps running unreplicated (counted, so soaks can assert
// the window was empty).
func (s *Service) shipRepl(p *sim.Proc, rep *dirRepl) {
	succ := s.fabric.Successor(s.node)
	m := &msg.Message{Type: msg.TypeDirReplicate, To: succ, Size: sizeSmallReq, Payload: rep}
	s.fabric.StampOrigin(m, OriginKernelOf(rep.GID))
	s.metrics.Counter("dir.failover.replicated").Inc()
	if _, err := s.ep.Call(p, m); err != nil {
		if msg.IsDeadPeer(err) {
			s.metrics.Counter("dir.failover.skipped").Inc()
			return
		}
		panic(fmt.Sprintf("vm: replication to successor failed: %v", err))
	}
}

// shipDirEntry mirrors one directory entry's post-transaction state to the
// successor. Called under the entry's mu (and the asLock shared), which
// serialises the per-entry replication stream; the handler side applies
// records in version order, so a fault-plan duplicate can never roll the
// mirror backwards.
//
//popcornvet:allow locksend the per-entry replication stream must be ordered by the same lock that orders the transactions; the successor-side handler only stores into its mirror maps and never calls back
func (sp *Space) shipDirEntry(p *sim.Proc, vpn mem.VPN, de *dirEntry) {
	rep := &dirRepl{
		Kind: replEntry, GID: sp.gid, Origin: sp.svc.node,
		VPN: vpn, State: int(de.state), Owner: de.owner,
		Value: de.value, Version: de.version, Reclaimed: de.reclaimed,
	}
	if len(de.sharers) > 0 {
		rep.Sharers = nodeSet(de.sharers, msg.NodeID(-1))
	}
	sp.svc.shipRepl(p, rep)
}

// shipLayout mirrors one committed layout mutation to the successor. Called
// under the asLock exclusive — the same lock that assigned the version — so
// the layout replication stream arrives in version order.
//
//popcornvet:allow locksend layout replication must be ordered by the asLock that versions the mutations; the successor-side handler only stores into its mirror and never calls back
func (sp *Space) shipLayout(p *sim.Proc, op vmaOp, lo, hi mem.VPN, prot mem.Prot) {
	sp.svc.shipRepl(p, &dirRepl{
		Kind: replLayout, GID: sp.gid, Origin: sp.svc.node,
		Op: op, Lo: lo, Hi: hi, Prot: prot,
		LayoutVersion: sp.version, NextMap: sp.nextMap, Brk: sp.brk,
	})
}

// shipSurrender preserves a surrendered Modified value at the holder's ring
// successor before the invalidation ack releases it to the (possibly dying)
// origin. Called from the invalidate handler on the revokee: the revoking
// transaction is blocked on our ack, so by the time the origin can commit —
// and therefore by the time a crash can lose the commit's own replEntry ship
// — the value is already durable in the mirror. The transaction's directory
// version guards the patch, so fault-plan duplicates can never roll a newer
// mirrored value backwards.
func (s *Service) shipSurrender(p *sim.Proc, gid GID, vpn mem.VPN, val int64, ver uint64) {
	holder := s.fabric.OriginHolder(OriginKernelOf(gid))
	succ := s.fabric.Successor(holder)
	rep := &dirRepl{Kind: replValue, GID: gid, Origin: holder, VPN: vpn, Value: val, Version: ver}
	s.metrics.Counter("dir.failover.preserved").Inc()
	if succ == s.node {
		// The revokee is the mirror host itself; patch in place.
		s.applyRepl(rep)
		return
	}
	m := &msg.Message{Type: msg.TypeDirReplicate, To: succ, Size: sizeSmallReq, Payload: rep}
	s.fabric.StampOrigin(m, OriginKernelOf(gid))
	if _, err := s.ep.Call(p, m); err != nil {
		if msg.IsDeadPeer(err) {
			s.metrics.Counter("dir.failover.skipped").Inc()
			return
		}
		panic(fmt.Sprintf("vm: surrender preservation to successor failed: %v", err))
	}
}

// RegisterReplicaFrom is RegisterReplica plus failover mirroring: the
// registration is shipped to the successor so a promoted origin knows which
// kernels its layout pushes must reach. The origin-side group-setup handler
// calls this (it has the handler proc the synchronous ship needs).
func (s *Service) RegisterReplicaFrom(p *sim.Proc, gid GID, node msg.NodeID) error {
	if err := s.RegisterReplica(gid, node); err != nil {
		return err
	}
	if s.failover {
		s.shipRepl(p, &dirRepl{Kind: replReplica, GID: gid, Origin: s.node, Replica: node})
	}
	return nil
}

// handleDirReplicate stores one replication record into this kernel's
// mirror for the group. Pure state installation: no locks, no outbound
// messages, so the origin's synchronous ship can never deadlock against it.
func (s *Service) handleDirReplicate(p *sim.Proc, m *msg.Message) *msg.Message {
	s.applyRepl(m.Payload.(*dirRepl))
	return &msg.Message{Size: 64}
}

// applyRepl installs one replication record into the mirror for its group,
// creating the mirror on first contact. Shared by the wire handler and the
// revokee-is-successor local path of shipSurrender.
func (s *Service) applyRepl(rep *dirRepl) {
	mir, ok := s.mirrors[rep.GID]
	if !ok {
		mir = &dirMirror{
			origin:   rep.Origin,
			entries:  make(map[mem.VPN]*mirrorEntry),
			vmas:     &vmaSet{},
			nextMap:  mapBase,
			brk:      heapBase,
			replicas: make(map[msg.NodeID]struct{}),
		}
		s.mirrors[rep.GID] = mir
	}
	switch rep.Kind {
	case replEntry:
		if old, dup := mir.entries[rep.VPN]; dup && rep.Version <= old.version {
			break // fault-plan duplicate of an already-applied record
		}
		mir.entries[rep.VPN] = &mirrorEntry{
			state: pageState(rep.State), owner: rep.Owner, sharers: rep.Sharers,
			value: rep.Value, version: rep.Version, reclaimed: rep.Reclaimed,
		}
	case replLayout:
		if rep.LayoutVersion <= mir.version {
			break // duplicate: the stream is Call-serialised, never reordered
		}
		switch rep.Op {
		case opMap:
			mir.vmas.remove(rep.Lo, rep.Hi)
			if err := mir.vmas.insert(VMA{Lo: rep.Lo, Hi: rep.Hi, Prot: rep.Prot}); err != nil {
				panic(fmt.Sprintf("vm: mirror layout apply: %v", err))
			}
		case opUnmap:
			mir.vmas.remove(rep.Lo, rep.Hi)
			for v := rep.Lo; v < rep.Hi; v++ {
				delete(mir.entries, v)
			}
		case opProtect:
			mir.vmas.protect(rep.Lo, rep.Hi, rep.Prot)
		}
		mir.version = rep.LayoutVersion
		mir.nextMap = rep.NextMap
		mir.brk = rep.Brk
	case replReplica:
		mir.replicas[rep.Replica] = struct{}{}
	case replValue:
		// Patch the value, leaving state/owner/version alone: the origin's
		// own replEntry for the same transaction (version == rep.Version)
		// must still apply over this if the origin survives to ship it.
		me, ok := mir.entries[rep.VPN]
		if !ok {
			// No entry was ever shipped (possible only if the grant that made
			// the revokee owner raced a successor change): keep the value as
			// a reclaimed-style entry so promotion transfers it.
			mir.entries[rep.VPN] = &mirrorEntry{state: pageUnmapped, reclaimed: true, value: rep.Value}
		} else if rep.Version > me.version {
			me.value = rep.Value
		}
	}
	s.metrics.Counter("dir.failover.applied").Inc()
}

// PromoteOrigin rebuilds, from this kernel's mirrors, an authoritative
// space for every group whose origin was `dead` — provided this kernel is
// the dead origin's designated successor and failover is on. It returns the
// promoted GIDs (sorted). Run *before* the generic PeerDied reclaim sweep:
// promotion purges the dead kernel's page copies from the rebuilt
// directory itself (under dir.failover.ownerlost, keeping the directory's
// last written-back values), so the sweep finds nothing to reclaim on the
// promoted spaces and directory-known contents survive the crash.
func (s *Service) PromoteOrigin(dead msg.NodeID) []GID {
	if !s.failover || s.fabric.Successor(dead) != s.node {
		return nil
	}
	gids := make([]GID, 0, len(s.mirrors))
	for gid, mir := range s.mirrors {
		if mir.origin == dead {
			gids = append(gids, gid)
		}
	}
	sortGIDsVM(gids)
	for _, gid := range gids {
		s.promoteSpace(gid, s.mirrors[gid], dead)
		delete(s.mirrors, gid)
		s.metrics.Counter("dir.failover.promoted").Inc()
	}
	return gids
}

// promoteSpace converts this kernel's replica of gid (or a fresh space, if
// no member ever ran here) into the authoritative origin copy, rebuilt from
// the mirror. Pure state rebuild — no blocking — so the promotion is atomic
// in virtual time.
func (s *Service) promoteSpace(gid GID, mir *dirMirror, dead msg.NodeID) {
	sp, ok := s.spaces[gid]
	if !ok {
		sp = &Space{
			svc:     s,
			gid:     gid,
			pt:      mem.NewPageTable(),
			values:  make(map[mem.VPN]int64),
			pending: make(map[mem.VPN]*pendingFault),
		}
		s.spaces[gid] = sp
	}
	sp.isOrigin = true
	sp.origin = s.node
	sp.asLock = sim.NewRWMutex(s.e).SetLabel(fmt.Sprintf("vm.asLock.g%d", gid))
	sp.vmas = mir.vmas
	if mir.version > sp.version {
		sp.version = mir.version
	}
	sp.nextMap = mir.nextMap
	sp.brk = mir.brk
	sp.replicas = make(map[msg.NodeID]struct{})
	for n := range mir.replicas {
		if n != s.node && n != dead {
			sp.replicas[n] = struct{}{}
		}
	}
	sp.dir = make(map[mem.VPN]*dirEntry, len(mir.entries))
	vpns := make([]mem.VPN, 0, len(mir.entries))
	for vpn := range mir.entries {
		vpns = append(vpns, vpn)
	}
	sortVPNs(vpns)
	for _, vpn := range vpns {
		me := mir.entries[vpn]
		de := &dirEntry{
			state:     me.state,
			owner:     me.owner,
			value:     me.value,
			reclaimed: me.reclaimed,
			version:   me.version + 1,
			mu:        sim.NewMutex(s.e).SetLabel("vm.dir-entry"),
		}
		if len(me.sharers) > 0 {
			de.sharers = make(map[msg.NodeID]struct{}, len(me.sharers))
			for _, n := range me.sharers {
				de.sharers[n] = struct{}{}
			}
		}
		// Purge the dead kernel from the entry here, keeping the directory's
		// last written-back value: the promoted grant path re-faults it from
		// the home node, which is exactly the data loss the replication log
		// exists to prevent. Writes the dead origin performed against its own
		// copies *after* its last directory transaction are gone with it —
		// the log captures directory-known state, not page dirty bits.
		switch {
		case de.state == pageModified && de.owner == dead:
			de.state = pageUnmapped
			de.owner = 0
			de.reclaimed = true
			s.metrics.Counter("dir.failover.ownerlost").Inc()
		case de.state == pageShared:
			if _, held := de.sharers[dead]; held {
				delete(de.sharers, dead)
				if len(de.sharers) == 0 {
					de.state = pageUnmapped
					de.sharers = nil
					de.reclaimed = true
				}
				s.metrics.Counter("dir.failover.ownerlost").Inc()
			}
		}
		sp.dir[vpn] = de
	}
}

// Retarget re-points this kernel's replica of gid at the promoted holder.
// Called from the thread-group layer when a TypeOriginHandover announcement
// arrives; origin spaces (including the freshly promoted one) are left
// alone.
func (s *Service) Retarget(gid GID, holder msg.NodeID) {
	if sp, ok := s.spaces[gid]; ok && !sp.isOrigin {
		sp.origin = holder
	}
}

// EnsureOrigin guarantees an authoritative space for gid exists on this
// kernel after a promotion, upgrading a replica (or creating an empty
// space) if the replication stream never shipped a VM record for the group
// — a group that crashed before its first directory or layout commit.
func (s *Service) EnsureOrigin(gid GID) {
	sp, ok := s.spaces[gid]
	if ok && sp.isOrigin {
		return
	}
	if !ok {
		sp = &Space{
			svc:     s,
			gid:     gid,
			vmas:    &vmaSet{},
			pt:      mem.NewPageTable(),
			values:  make(map[mem.VPN]int64),
			pending: make(map[mem.VPN]*pendingFault),
		}
		s.spaces[gid] = sp
	}
	sp.isOrigin = true
	sp.origin = s.node
	sp.asLock = sim.NewRWMutex(s.e).SetLabel(fmt.Sprintf("vm.asLock.g%d", gid))
	if sp.dir == nil {
		sp.dir = make(map[mem.VPN]*dirEntry)
	}
	if sp.replicas == nil {
		sp.replicas = make(map[msg.NodeID]struct{})
	}
	if sp.nextMap == 0 {
		sp.nextMap = mapBase
	}
	if sp.brk == 0 {
		sp.brk = heapBase
	}
}

// DropMirror discards this kernel's replication mirror for gid. The
// thread-group layer calls it when the origin ships a group's final
// (exited) snapshot: a torn-down group must not stay promotable.
func (s *Service) DropMirror(gid GID) {
	delete(s.mirrors, gid)
}
