package vm

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
)

// Map creates a new anonymous mapping of length bytes (rounded up to whole
// pages) and returns its base address. On a replica kernel the operation is
// forwarded to the origin; propagation to other replicas is lazy (they fetch
// the VMA on first fault), mirroring the paper's design where only
// destructive layout changes are pushed eagerly.
func (sp *Space) Map(p *sim.Proc, length uint64, prot mem.Prot) (mem.Addr, error) {
	if length == 0 {
		return 0, fmt.Errorf("%w: zero-length map", ErrBadRange)
	}
	sp.svc.metrics.Counter("vm.op.map").Inc()
	start := p.Now()
	defer func() { sp.svc.metrics.Histogram("vm.op.map.latency").Observe(p.Now().Sub(start)) }()
	if sp.isOrigin {
		return sp.originMap(p, length, prot)
	}
	reply, err := sp.svc.ep.Call(p, &msg.Message{
		Type: msg.TypeVMAOp, To: sp.origin, Size: sizeSmallReq,
		Payload: &vmaOpReq{GID: sp.gid, Op: opMap, Length: length, Prot: prot},
	})
	if err != nil {
		return 0, err
	}
	r := reply.Payload.(*vmaOpReply)
	if r.Err != "" {
		return 0, fmt.Errorf("vm: remote map: %s", r.Err)
	}
	// Cache the new area locally so this kernel's first fault skips the
	// VMA-fetch round trip.
	lo := mem.PageOf(r.Addr)
	hi := lo + mem.VPN(pagesFor(length))
	sp.cacheVMA(VMA{Lo: lo, Hi: hi, Prot: prot}, r.Version)
	return r.Addr, nil
}

// Unmap removes every mapping in [addr, addr+length). The change is pushed
// synchronously to all replicas: every kernel drops its PTEs, copies and
// frames for the range before Unmap returns.
func (sp *Space) Unmap(p *sim.Proc, addr mem.Addr, length uint64) error {
	if err := checkRange(addr, length); err != nil {
		return err
	}
	sp.svc.metrics.Counter("vm.op.unmap").Inc()
	start := p.Now()
	defer func() { sp.svc.metrics.Histogram("vm.op.unmap.latency").Observe(p.Now().Sub(start)) }()
	if sp.isOrigin {
		return sp.originUnmap(p, addr, length)
	}
	reply, err := sp.svc.ep.Call(p, &msg.Message{
		Type: msg.TypeVMAOp, To: sp.origin, Size: sizeSmallReq,
		Payload: &vmaOpReq{GID: sp.gid, Op: opUnmap, Addr: addr, Length: length},
	})
	if err != nil {
		return err
	}
	if r := reply.Payload.(*vmaOpReply); r.Err != "" {
		return fmt.Errorf("vm: remote unmap: %s", r.Err)
	}
	return nil
}

// Protect changes the protection of [addr, addr+length), which must be
// fully mapped. Like Unmap, the change propagates synchronously.
func (sp *Space) Protect(p *sim.Proc, addr mem.Addr, length uint64, prot mem.Prot) error {
	if err := checkRange(addr, length); err != nil {
		return err
	}
	sp.svc.metrics.Counter("vm.op.protect").Inc()
	start := p.Now()
	defer func() { sp.svc.metrics.Histogram("vm.op.protect.latency").Observe(p.Now().Sub(start)) }()
	if sp.isOrigin {
		return sp.originProtect(p, addr, length, prot)
	}
	reply, err := sp.svc.ep.Call(p, &msg.Message{
		Type: msg.TypeVMAOp, To: sp.origin, Size: sizeSmallReq,
		Payload: &vmaOpReq{GID: sp.gid, Op: opProtect, Addr: addr, Length: length, Prot: prot},
	})
	if err != nil {
		return err
	}
	if r := reply.Payload.(*vmaOpReply); r.Err != "" {
		return fmt.Errorf("vm: remote protect: %s", r.Err)
	}
	return nil
}

func checkRange(addr mem.Addr, length uint64) error {
	if length == 0 {
		return fmt.Errorf("%w: zero length", ErrBadRange)
	}
	if uint64(addr)%hw.PageSize != 0 {
		return fmt.Errorf("%w: address %#x not page-aligned", ErrBadRange, uint64(addr))
	}
	return nil
}

func pagesFor(length uint64) int {
	return int((length + hw.PageSize - 1) / hw.PageSize)
}

// originMap runs the map at the origin: allocate an address range, insert
// the VMA, bump the version. No eager propagation.
func (sp *Space) originMap(p *sim.Proc, length uint64, prot mem.Prot) (mem.Addr, error) {
	sp.asLock.Lock(p)
	defer sp.asLock.Unlock(p)
	p.Sleep(sp.svc.machine.Cost.VMAOp)
	addr := sp.nextMap
	pages := pagesFor(length)
	sp.nextMap += mem.Addr(pages * hw.PageSize)
	lo := mem.PageOf(addr)
	v := VMA{Lo: lo, Hi: lo + mem.VPN(pages), Prot: prot}
	if err := sp.vmas.insert(v); err != nil {
		return 0, err
	}
	sp.version++
	sp.svc.checker.LayoutApplied(sp.svc.node, int64(sp.gid), sp.version)
	if sp.svc.failover {
		//popcornvet:allow locksend layout snapshots must reach the mirror in version order, so the ship happens under the asLock that assigned the version; the mirror-side handler only records the snapshot and never calls back into the origin
		sp.shipLayout(p, opMap, v.Lo, v.Hi, prot)
	}
	if sp.svc.eagerMapPush {
		//popcornvet:allow locksend VMA updates must reach replicas in version order, so the push happens under the asLock that assigned the version; the replica-side handler applies the layout locally and never calls back into the origin
		if err := sp.pushUpdate(p, &vmaUpdate{GID: sp.gid, Op: opMap, Lo: v.Lo, Hi: v.Hi, Prot: prot, Version: sp.version}); err != nil {
			return 0, err
		}
	}
	return addr, nil
}

// originUnmap removes the range, scrubs local pages and the directory, and
// pushes the update to every replica.
func (sp *Space) originUnmap(p *sim.Proc, addr mem.Addr, length uint64) error {
	sp.asLock.Lock(p)
	defer sp.asLock.Unlock(p)
	p.Sleep(sp.svc.machine.Cost.VMAOp)
	lo := mem.PageOf(addr)
	hi := lo + mem.VPN(pagesFor(length))
	removed := sp.vmas.remove(lo, hi)
	if len(removed) == 0 {
		return nil // unmapping a hole is a no-op, as in Linux
	}
	sp.version++
	sp.svc.checker.LayoutApplied(sp.svc.node, int64(sp.gid), sp.version)
	for _, r := range removed {
		sp.scrubLocal(p, r.Lo, r.Hi)
		for v := r.Lo; v < r.Hi; v++ {
			delete(sp.dir, v)
		}
		sp.svc.checker.Unmapped(int64(sp.gid), r.Lo, r.Hi)
	}
	if sp.svc.failover {
		//popcornvet:allow locksend layout snapshots must reach the mirror in version order, so the ship happens under the asLock that assigned the version; the mirror-side handler only records the snapshot and never calls back into the origin
		sp.shipLayout(p, opUnmap, lo, hi, 0)
	}
	//popcornvet:allow locksend VMA updates must reach replicas in version order, so the push happens under the asLock that assigned the version; the replica-side handler applies the layout locally and never calls back into the origin
	return sp.pushUpdate(p, &vmaUpdate{GID: sp.gid, Op: opUnmap, Lo: lo, Hi: hi, Version: sp.version})
}

// originProtect re-protects the range and pushes the update to replicas.
func (sp *Space) originProtect(p *sim.Proc, addr mem.Addr, length uint64, prot mem.Prot) error {
	sp.asLock.Lock(p)
	defer sp.asLock.Unlock(p)
	p.Sleep(sp.svc.machine.Cost.VMAOp)
	lo := mem.PageOf(addr)
	hi := lo + mem.VPN(pagesFor(length))
	if !sp.vmas.covered(lo, hi) {
		return fmt.Errorf("%w: mprotect range [%#x,%#x) not fully mapped", ErrBadRange, uint64(addr), uint64(addr)+length)
	}
	changed := sp.vmas.protect(lo, hi, prot)
	if len(changed) == 0 {
		return nil
	}
	sp.version++
	sp.svc.checker.LayoutApplied(sp.svc.node, int64(sp.gid), sp.version)
	if sp.svc.failover {
		//popcornvet:allow locksend layout snapshots must reach the mirror in version order, so the ship happens under the asLock that assigned the version; the mirror-side handler only records the snapshot and never calls back into the origin
		sp.shipLayout(p, opProtect, lo, hi, prot)
	}
	sp.applyProtectLocal(p, lo, hi, prot)
	//popcornvet:allow locksend VMA updates must reach replicas in version order, so the push happens under the asLock that assigned the version; the replica-side handler applies the layout locally and never calls back into the origin
	return sp.pushUpdate(p, &vmaUpdate{GID: sp.gid, Op: opProtect, Lo: lo, Hi: hi, Prot: prot, Version: sp.version})
}

// pushUpdate synchronously delivers a layout change to every replica.
func (sp *Space) pushUpdate(p *sim.Proc, u *vmaUpdate) error {
	targets := nodeSet(sp.replicas, sp.origin)
	if len(targets) == 0 {
		return nil
	}
	sp.svc.metrics.Counter("vm.update.pushed").Add(uint64(len(targets)))
	_, err := sp.svc.ep.CallEach(p, targets, func(to msg.NodeID) *msg.Message {
		m := &msg.Message{Type: msg.TypeVMAUpdate, To: to, Size: sizeSmallReq, Payload: u}
		// Origin-role traffic: epoch-stamped so stale copies from a
		// crashed-and-rejoined origin are fenced (see revokeCopies).
		sp.svc.fabric.StampOrigin(m, OriginKernelOf(sp.gid))
		return m
	})
	return err
}

// scrubLocal drops this kernel's PTEs, values and frames for [lo, hi),
// charging a TLB shootdown across the kernel's cores if anything was mapped.
func (sp *Space) scrubLocal(p *sim.Proc, lo, hi mem.VPN) {
	cleared := sp.pt.ClearRange(lo, hi)
	for v := lo; v < hi; v++ {
		delete(sp.values, v)
		if pend, ok := sp.pending[v]; ok {
			pend.invalidated = true
			// A layout scrub voids any grant, whatever its directory
			// version: the mapping itself is gone.
			pend.invalVersion = ^uint64(0)
		}
	}
	for _, pte := range cleared {
		if pte.Frame != mem.NoFrame {
			sp.svc.frames.FreeFrame(p, pte.Frame)
		}
	}
	if len(cleared) > 0 {
		p.Sleep(sp.svc.machine.TLBShootdown(sp.shootdownCores(), false))
	}
}

// applyProtectLocal updates this kernel's PTEs for a protection change.
// Entries keep their frames (so re-enabling access needs no data transfer)
// but lose the revoked access bits; hardware-visible changes charge a TLB
// shootdown across the kernel's cores.
func (sp *Space) applyProtectLocal(p *sim.Proc, lo, hi mem.VPN, prot mem.Prot) {
	touched := 0
	for v := lo; v < hi; v++ {
		pte, ok := sp.pt.Lookup(v)
		if !ok {
			continue
		}
		// A PTE may never gain bits here: upgrades go through the fault
		// path so the directory can arbitrate ownership.
		newProt := pte.Prot & prot
		if newProt != pte.Prot {
			pte.Prot = newProt
			sp.pt.Set(v, pte)
			touched++
		}
	}
	for v := lo; v < hi; v++ {
		if pend, ok := sp.pending[v]; ok {
			pend.invalidated = true
			// Protection changed under the fault; no grant may install,
			// whatever its directory version.
			pend.invalVersion = ^uint64(0)
		}
	}
	if touched > 0 {
		p.Sleep(sp.svc.machine.TLBShootdown(sp.shootdownCores(), false))
	}
}

// cacheVMA installs a fetched or just-created VMA into the replica cache,
// replacing any stale fragments the authoritative area supersedes.
func (sp *Space) cacheVMA(v VMA, version uint64) {
	sp.vmas.remove(v.Lo, v.Hi)
	// insert cannot fail after the remove cleared the range.
	if err := sp.vmas.insert(v); err != nil {
		panic(fmt.Sprintf("vm: cacheVMA: %v", err))
	}
	if version > sp.version {
		sp.version = version
	}
	sp.svc.checker.LayoutApplied(sp.svc.node, int64(sp.gid), sp.version)
}

// heapBase is where each group's brk heap starts (below the mmap area).
const heapBase mem.Addr = 1 << 28

// Sbrk grows (delta > 0) or shrinks (delta < 0) the process heap by delta
// bytes, rounded to whole pages, returning the previous program break. It
// is the classic brk(2) interface over the same origin-coordinated
// machinery: growth is lazy like mmap, shrinkage pushes like munmap.
func (sp *Space) Sbrk(p *sim.Proc, delta int64) (mem.Addr, error) {
	if sp.isOrigin {
		return sp.originSbrk(p, delta)
	}
	reply, err := sp.svc.ep.Call(p, &msg.Message{
		Type: msg.TypeVMAOp, To: sp.origin, Size: sizeSmallReq,
		Payload: &vmaOpReq{GID: sp.gid, Op: opBrk, Length: uint64(delta)},
	})
	if err != nil {
		return 0, err
	}
	r := reply.Payload.(*vmaOpReply)
	if r.Err != "" {
		return 0, fmt.Errorf("vm: remote sbrk: %s", r.Err)
	}
	return r.Addr, nil
}

func (sp *Space) originSbrk(p *sim.Proc, delta int64) (mem.Addr, error) {
	sp.asLock.Lock(p)
	p.Sleep(sp.svc.machine.Cost.VMAOp)
	old := sp.brk
	if delta == 0 {
		sp.asLock.Unlock(p)
		return old, nil
	}
	pages := (delta + hw.PageSize - 1) / hw.PageSize
	if delta < 0 {
		pages = -((-delta + hw.PageSize - 1) / hw.PageSize)
	}
	newBrk := old + mem.Addr(pages*hw.PageSize)
	if newBrk < heapBase {
		sp.asLock.Unlock(p)
		return 0, fmt.Errorf("%w: brk below heap base", ErrBadRange)
	}
	if delta > 0 {
		v := VMA{Lo: mem.PageOf(old), Hi: mem.PageOf(newBrk), Prot: mem.ProtRead | mem.ProtWrite}
		if err := sp.vmas.insert(v); err != nil {
			sp.asLock.Unlock(p)
			return 0, err
		}
		sp.brk = newBrk
		sp.version++
		sp.svc.checker.LayoutApplied(sp.svc.node, int64(sp.gid), sp.version)
		if sp.svc.failover {
			//popcornvet:allow locksend layout snapshots must reach the mirror in version order, so the ship happens under the asLock that assigned the version; the mirror-side handler only records the snapshot and never calls back into the origin
			sp.shipLayout(p, opMap, v.Lo, v.Hi, v.Prot)
		}
		sp.asLock.Unlock(p)
		return old, nil
	}
	// Shrink: release [newBrk, old) like an unmap, pushing to replicas.
	lo, hi := mem.PageOf(newBrk), mem.PageOf(old)
	removed := sp.vmas.remove(lo, hi)
	sp.brk = newBrk
	sp.version++
	sp.svc.checker.LayoutApplied(sp.svc.node, int64(sp.gid), sp.version)
	for _, r := range removed {
		sp.scrubLocal(p, r.Lo, r.Hi)
		for v := r.Lo; v < r.Hi; v++ {
			delete(sp.dir, v)
		}
		sp.svc.checker.Unmapped(int64(sp.gid), r.Lo, r.Hi)
	}
	if sp.svc.failover {
		//popcornvet:allow locksend layout snapshots must reach the mirror in version order, so the ship happens under the asLock that assigned the version; the mirror-side handler only records the snapshot and never calls back into the origin
		sp.shipLayout(p, opUnmap, lo, hi, 0)
	}
	//popcornvet:allow locksend VMA updates must reach replicas in version order, so the push happens under the asLock that assigned the version; the replica-side handler applies the layout locally and never calls back into the origin
	err := sp.pushUpdate(p, &vmaUpdate{GID: sp.gid, Op: opUnmap, Lo: lo, Hi: hi, Version: sp.version})
	sp.asLock.Unlock(p)
	return old, err
}
