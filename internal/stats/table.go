package stats

import (
	"fmt"
	"strings"
)

// Table is a simple aligned-column table, used to print the paper's tables.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		s[i] = fmt.Sprint(c)
	}
	t.AddRow(s...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a set of named lines over a shared X axis, used to print the
// paper's figures as data series.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	lines  []seriesLine
}

type seriesLine struct {
	name string
	ys   []float64
}

// NewSeries returns an empty figure-series with the given axes.
func NewSeries(title, xlabel, ylabel string, xs ...float64) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel, X: xs}
}

// AddLine appends a named line; ys must align with X.
func (s *Series) AddLine(name string, ys []float64) error {
	if len(ys) != len(s.X) {
		return fmt.Errorf("stats: line %q has %d points, X axis has %d", name, len(ys), len(s.X))
	}
	s.lines = append(s.lines, seriesLine{name: name, ys: ys})
	return nil
}

// Lines returns the number of lines added.
func (s *Series) Lines() int { return len(s.lines) }

// Line returns the values of the named line and whether it exists.
func (s *Series) Line(name string) ([]float64, bool) {
	for _, l := range s.lines {
		if l.name == name {
			return l.ys, true
		}
	}
	return nil, false
}

// String renders the series as a table: X column plus one column per line.
func (s *Series) String() string {
	headers := append([]string{s.XLabel}, make([]string, len(s.lines))...)
	for i, l := range s.lines {
		headers[i+1] = l.name
	}
	title := s.Title
	if s.YLabel != "" {
		title += " (y: " + s.YLabel + ")"
	}
	t := NewTable(title, headers...)
	for i, x := range s.X {
		cells := make([]string, len(headers))
		cells[0] = formatNum(x)
		for j, l := range s.lines {
			cells[j+1] = formatNum(l.ys[i])
		}
		t.AddRow(cells...)
	}
	return t.String()
}

func formatNum(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}
