// Package stats provides the lightweight metrics used throughout the
// simulation: counters, latency histograms with power-of-two buckets, and
// the table/series formatters the benchmark harness prints.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// histBuckets is the number of power-of-two latency buckets: bucket i covers
// [2^i, 2^(i+1)) nanoseconds, bucket 0 covers [0, 2).
const histBuckets = 48

// Histogram accumulates durations into power-of-two buckets and tracks
// exact count, sum, min and max. The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketOf(d)]++
}

func bucketOf(d time.Duration) int {
	n := uint64(d)
	b := 0
	for n > 1 && b < histBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the average observation, or zero if empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min returns the smallest observation, or zero if empty.
func (h *Histogram) Min() time.Duration { return h.min }

// Max returns the largest observation, or zero if empty.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using the
// upper edge of the bucket containing the q-th observation.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			upper := time.Duration(uint64(1) << uint(i+1))
			if upper > h.max && h.max > 0 {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Registry is a named collection of counters and histograms, used as the
// per-OS metrics set.
type Registry struct {
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Names returns all metric names in sorted order, counters then histograms.
func (r *Registry) Names() []string {
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dump renders the registry as one line per metric, sorted by name.
func (r *Registry) Dump() string {
	var b strings.Builder
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %d\n", n, r.counters[n].Value())
	}
	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %s\n", n, r.histograms[n])
	}
	return b.String()
}
