package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{10, 20, 30, 40} {
		h.Observe(d * time.Microsecond)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Mean() != 25*time.Microsecond {
		t.Fatalf("Mean = %v, want 25µs", h.Mean())
	}
	if h.Min() != 10*time.Microsecond || h.Max() != 40*time.Microsecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Sum() != 100*time.Microsecond {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation not clamped: min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.5)
	// Bucket resolution is power-of-two, so accept [500µs/2, 500µs*2].
	if p50 < 250*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 = %v, outside plausible range", p50)
	}
	if h.Quantile(1.0) > h.Max()*2 {
		t.Fatalf("p100 = %v way above max %v", h.Quantile(1.0), h.Max())
	}
	if h.Quantile(0) == 0 {
		t.Fatal("q=0 should return the first bucket edge, not 0")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		var h Histogram
		for _, s := range samples {
			h.Observe(time.Duration(s))
		}
		prev := time.Duration(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketOfEdges(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
	}
	for _, tt := range tests {
		if got := bucketOf(tt.d); got != tt.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestRegistryReusesMetrics(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Inc()
	if r.Counter("x").Value() != 1 {
		t.Fatal("Counter did not return the same instance")
	}
	h1 := r.Histogram("y")
	h1.Observe(time.Second)
	if r.Histogram("y").Count() != 1 {
		t.Fatal("Histogram did not return the same instance")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegistryDumpContainsMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(7)
	r.Histogram("lat").Observe(time.Millisecond)
	out := r.Dump()
	if !strings.Contains(out, "ops") || !strings.Contains(out, "7") {
		t.Fatalf("Dump missing counter: %q", out)
	}
	if !strings.Contains(out, "lat") {
		t.Fatalf("Dump missing histogram: %q", out)
	}
}

func TestTableAlignsColumns(t *testing.T) {
	tab := NewTable("T", "name", "value")
	tab.AddRow("a", "1")
	tab.AddRow("longer-name", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== T ==") {
		t.Fatalf("missing title: %q", lines[0])
	}
	// All data lines should have the value column at the same offset.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "22")
	if idx1 != idx2 {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}

func TestTableRowPaddingAndTruncation(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("only-one")
	tab.AddRow("x", "y", "dropped")
	if tab.Rows() != 2 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	out := tab.String()
	if strings.Contains(out, "dropped") {
		t.Fatalf("extra cell not dropped:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tab := NewTable("", "n", "d")
	tab.AddRowf(42, 3*time.Millisecond)
	out := tab.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "3ms") {
		t.Fatalf("AddRowf output missing cells:\n%s", out)
	}
}

func TestSeriesLineValidation(t *testing.T) {
	s := NewSeries("fig", "threads", "ops/s", 1, 2, 4)
	if err := s.AddLine("popcorn", []float64{10, 20, 40}); err != nil {
		t.Fatalf("AddLine: %v", err)
	}
	if err := s.AddLine("bad", []float64{1}); err == nil {
		t.Fatal("mismatched line accepted")
	}
	if s.Lines() != 1 {
		t.Fatalf("Lines = %d, want 1", s.Lines())
	}
	ys, ok := s.Line("popcorn")
	if !ok || ys[2] != 40 {
		t.Fatalf("Line lookup = %v,%v", ys, ok)
	}
	if _, ok := s.Line("missing"); ok {
		t.Fatal("missing line reported present")
	}
}

func TestSeriesStringRendersAllLines(t *testing.T) {
	s := NewSeries("F4", "threads", "ops/s", 1, 64)
	_ = s.AddLine("popcorn", []float64{100, 6400})
	_ = s.AddLine("smp", []float64{100, 3200})
	out := s.String()
	for _, want := range []string{"F4", "threads", "popcorn", "smp", "6400", "3200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatNum(t *testing.T) {
	if got := formatNum(64); got != "64" {
		t.Fatalf("formatNum(64) = %q", got)
	}
	if got := formatNum(0.5); got != "0.5" {
		t.Fatalf("formatNum(0.5) = %q", got)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("T", "name", "value")
	tab.AddRow("plain", "1")
	tab.AddRow("with,comma", `quote"inside`)
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "name,value\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("fig", "threads", "ops", 1, 2)
	_ = s.AddLine("a", []float64{10, 20})
	_ = s.AddLine("b", []float64{1.5, 2.5})
	var sb strings.Builder
	if err := s.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "threads,a,b\n1,10,1.5\n2,20,2.5\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("tbl", "name", "value")
	tb.AddRow("a", "1")
	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"table","title":"tbl","headers":["name","value"],"rows":[["a","1"]]}`
	if string(b) != want {
		t.Fatalf("JSON = %s, want %s", b, want)
	}
}

func TestSeriesJSON(t *testing.T) {
	s := NewSeries("fig", "threads", "ops", 1, 2)
	_ = s.AddLine("a", []float64{10, 20})
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"series","title":"fig","xlabel":"threads","ylabel":"ops","x":[1,2],"lines":[{"name":"a","ys":[10,20]}]}`
	if string(b) != want {
		t.Fatalf("JSON = %s, want %s", b, want)
	}
}
