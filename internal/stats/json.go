package stats

import "encoding/json"

// jsonTable is Table's wire form: a tagged object so consumers can
// distinguish tables from series without guessing at fields.
type jsonTable struct {
	Kind    string     `json:"kind"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON renders the table as {kind:"table", title, headers, rows}.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(jsonTable{Kind: "table", Title: t.Title, Headers: t.Headers, Rows: rows})
}

type jsonSeriesLine struct {
	Name string    `json:"name"`
	Ys   []float64 `json:"ys"`
}

type jsonSeries struct {
	Kind   string           `json:"kind"`
	Title  string           `json:"title"`
	XLabel string           `json:"xlabel"`
	YLabel string           `json:"ylabel"`
	X      []float64        `json:"x"`
	Lines  []jsonSeriesLine `json:"lines"`
}

// MarshalJSON renders the series as {kind:"series", title, axes, x, lines}.
func (s *Series) MarshalJSON() ([]byte, error) {
	lines := make([]jsonSeriesLine, 0, len(s.lines))
	for _, l := range s.lines {
		lines = append(lines, jsonSeriesLine{Name: l.name, Ys: l.ys})
	}
	return json.Marshal(jsonSeries{
		Kind: "series", Title: s.Title, XLabel: s.XLabel, YLabel: s.YLabel,
		X: s.X, Lines: lines,
	})
}
