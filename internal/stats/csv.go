package stats

import (
	"fmt"
	"io"
	"strings"
)

// CSV writes the table as RFC-4180-ish CSV (quotes only where needed).
func (t *Table) CSV(w io.Writer) error {
	if err := writeCSVRow(w, t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the series as CSV: the X column followed by one column per
// line.
func (s *Series) CSV(w io.Writer) error {
	headers := make([]string, 0, len(s.lines)+1)
	headers = append(headers, s.XLabel)
	for _, l := range s.lines {
		headers = append(headers, l.name)
	}
	if err := writeCSVRow(w, headers); err != nil {
		return err
	}
	row := make([]string, len(headers))
	for i, x := range s.X {
		row[0] = formatNum(x)
		for j, l := range s.lines {
			row[j+1] = formatNum(l.ys[i])
		}
		if err := writeCSVRow(w, row); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVRow(w io.Writer, cells []string) error {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	_, err := fmt.Fprintln(w, strings.Join(parts, ","))
	return err
}
