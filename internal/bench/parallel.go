package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// EngineKind is which sim engine the experiments boot: "serial" (default)
// or "parallel". cmd/benchtable sets it from its -engine flag. Every
// experiment produces identical virtual-time numbers under both engines —
// the flag exists to measure and soak the concurrent dispatcher, not to
// change results.
var EngineKind = "serial"

// newEngine builds an engine of the selected kind; experiments that boot
// a bare engine (rather than a full OS) go through it so -engine reaches
// them too.
func newEngine(opts ...sim.Option) sim.Engine {
	e, err := sim.NewEngineNamed(EngineKind, opts...)
	if err != nil {
		// EngineKind is validated where the flag is parsed; an invalid kind
		// here is a programming error.
		panic(err)
	}
	return e
}

// T5EngineScaling is the engine-dispatch scaling row: the same per-kernel
// compute workload (every kernel a lane, every quantum a batch of
// same-instant lane events) timed wall-clock under the serial and parallel
// engines at 4/8/16 modeled kernels. The digest column pins that both
// engines ran the identical schedule; the speedup column is host-dependent
// (it cannot exceed 1x on a single-CPU host, where the parallel engine
// only adds barrier overhead — see DESIGN.md §15).
func T5EngineScaling(s Scale) (*stats.Table, error) {
	ticks := 2000
	if s == Quick {
		ticks = 100
	}
	tab := stats.NewTable(
		fmt.Sprintf("T5 · Engine dispatch scaling, serial vs parallel (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)),
		"kernels", "events", "serial", "parallel", "speedup")
	for _, kernels := range []int{4, 8, 16} {
		serialNS, serialEvents, serialSum, err := timeLaneCompute("serial", kernels, ticks)
		if err != nil {
			return nil, err
		}
		parNS, parEvents, parSum, err := timeLaneCompute("parallel", kernels, ticks)
		if err != nil {
			return nil, err
		}
		if serialEvents != parEvents || serialSum != parSum {
			return nil, fmt.Errorf("bench: engines diverged at %d kernels: serial (%d events, sum %x) parallel (%d events, sum %x)",
				kernels, serialEvents, serialSum, parEvents, parSum)
		}
		tab.AddRow(
			fmt.Sprintf("%d", kernels),
			fmt.Sprintf("%d", serialEvents),
			time.Duration(serialNS).Round(10*time.Microsecond).String(),
			time.Duration(parNS).Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(serialNS)/float64(parNS)),
		)
	}
	return tab, nil
}

// timeLaneCompute runs the per-kernel compute workload on a fresh engine of
// the given kind and returns (host wall-clock ns, events processed, result
// checksum). Each kernel is one lane running a quantum-locked compute proc,
// so every quantum yields a batch of `kernels` same-instant lane events —
// the shape the parallel engine dispatches concurrently.
func timeLaneCompute(kind string, kernels, ticks int) (int64, uint64, uint64, error) {
	e, err := sim.NewEngineNamed(kind, sim.WithSeed(1))
	if err != nil {
		return 0, 0, 0, err
	}
	defer e.Close()
	sums := make([]uint64, kernels)
	for k := 0; k < kernels; k++ {
		k := k
		lane := e.Lane(k)
		lane.Spawn(fmt.Sprintf("compute-%d", k), func(p *sim.Proc) {
			acc := uint64(k + 1)
			for i := 0; i < ticks; i++ {
				// The compute body: enough lane-local work per event for
				// concurrency to matter, touching only this lane's state.
				for j := 0; j < 512; j++ {
					acc = acc*6364136223846793005 + 1442695040888963407
				}
				acc ^= p.Engine().Rand().Uint64() >> 32
				p.Sleep(100 * time.Microsecond)
			}
			sums[k] = acc
		})
	}
	start := time.Now()
	if err := e.Run(); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start).Nanoseconds()
	var sum uint64
	for _, v := range sums {
		sum = sum*31 + v
	}
	return elapsed, e.EventsProcessed(), sum, nil
}
