package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faultinj"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/osi"
	"repro/internal/sim"
	"repro/internal/stats"
)

// R3FailoverSweep measures what the origin-replication plane costs and what
// it buys. Three configurations of the same 4-kernel directory-heavy
// workload (process origin on kernel 0, workers on the survivors):
//
//   - replication off, no crash: the baseline;
//   - replication on, no crash: every directory and group mutation pays a
//     synchronous ship to the ring successor — the steady-state overhead;
//   - replication on, origin crash: kernel 0 dies mid-run. Downtime is the
//     gap between the crash and the successor's promotion (detection
//     dominates it), and the max fault stall is the longest any worker
//     operation waited — the ops that straddled the outage pay detection
//     plus promotion plus their paced retries.
//
// The crash row must finish with zero reclaimed pages and zero orphaned
// exits: the failover contract, measured rather than asserted.
func R3FailoverSweep(s Scale) (*stats.Table, error) {
	seeds := 8
	if s == Quick {
		seeds = 2
	}
	type config struct {
		name            string
		failover, crash bool
	}
	configs := []config{
		{"off / no crash", false, false},
		{"on / no crash", true, false},
		{"on / origin crash", true, true},
	}
	t := stats.NewTable(fmt.Sprintf("R3: origin-failover sweep - replication overhead and crash downtime (%d seeds, 4 kernels)", seeds),
		"replication / fault", "completion (ms)", "repl records", "downtime (us)", "max fault stall (us)", "promoted", "reclaimed", "orphaned")
	for _, cfg := range configs {
		var (
			completion, downtime, stall               time.Duration
			replicated, promoted, reclaimed, orphaned uint64
		)
		for seed := int64(1); seed <= int64(seeds); seed++ {
			c, err := oneFailoverCell(seed, cfg.failover, cfg.crash)
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", cfg.name, seed, err)
			}
			completion += c.completion
			downtime += c.downtime
			if c.maxStall > stall {
				stall = c.maxStall
			}
			replicated += c.replicated
			promoted += c.promoted
			reclaimed += c.reclaimed
			orphaned += c.orphaned
		}
		n := time.Duration(seeds)
		t.AddRow(cfg.name,
			fmt.Sprintf("%.3f", float64((completion/n).Nanoseconds())/1e6),
			fmt.Sprintf("%d", replicated),
			fmt.Sprintf("%.1f", float64((downtime/n).Nanoseconds())/1000),
			fmt.Sprintf("%.1f", float64(stall.Nanoseconds())/1000),
			fmt.Sprintf("%d", promoted),
			fmt.Sprintf("%d", reclaimed),
			fmt.Sprintf("%d", orphaned))
	}
	return t, nil
}

// failoverCell is one seed's outcome for one R3 configuration.
type failoverCell struct {
	completion time.Duration
	downtime   time.Duration
	maxStall   time.Duration
	replicated uint64
	promoted   uint64
	reclaimed  uint64
	orphaned   uint64
}

// oneFailoverCell runs the R3 workload once. The crash is absolute-time
// (not protocol-relative like the soak's): the downtime measurement needs a
// known crash instant to subtract from the observed promotion instant.
func oneFailoverCell(seed int64, failover, crash bool) (*failoverCell, error) {
	const crashAt = 1500 * time.Microsecond
	topo := hw.Topology{Cores: 16, NUMANodes: 2}
	machine, err := hw.NewMachine(topo, hw.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	cc := kernel.DefaultClusterConfig(machine)
	cc.Kernels = 4
	o, err := core.Boot(core.Config{Topology: topo, Cluster: &cc, Seed: seed, TieShuffle: true})
	if err != nil {
		return nil, err
	}
	defer o.Close()
	e := o.Engine()
	if failover {
		o.EnableFailover()
	}
	if crash {
		o.EnableFaults(&faultinj.Plan{
			Seed:    seed,
			Crashes: []faultinj.NodeCrash{{Node: 0, At: crashAt}},
		}, msg.FaultConfig{})
	}
	cell := &failoverCell{}
	var runErr error
	e.Spawn("r3-driver", func(p *sim.Proc) {
		pr, err := o.StartProcessOn(p, 0)
		if err != nil {
			runErr = err
			return
		}
		var base mem.Addr
		const (
			shared  = 4
			workers = 6
		)
		ready := sim.NewWaitGroup()
		ready.Add(1)
		if err := pr.Spawn(p, 0, func(th osi.Thread) {
			a, err := th.Mmap((shared+workers+1)*hw.PageSize, mem.ProtRead|mem.ProtWrite)
			if err != nil {
				panic(err)
			}
			for i := 0; i < shared; i++ {
				if err := th.Store(a+mem.Addr(i*hw.PageSize), int64(100+i)); err != nil {
					panic(err)
				}
			}
			base = a
			ready.Done()
		}); err != nil {
			runErr = err
			return
		}
		ready.Wait(p)
		tally := base + mem.Addr((shared+workers)*hw.PageSize)
		for i := 0; i < workers; i++ {
			i := i
			if err := pr.Spawn(p, 1+i%3, func(th osi.Thread) {
				own := base + mem.Addr((shared+i)*hw.PageSize)
				for n := 0; n < 60; n++ {
					th.Compute(30 * time.Microsecond)
					var err error
					switch n % 3 {
					case 0:
						_, err = th.Load(base + mem.Addr((n%shared)*hw.PageSize))
					case 1:
						err = th.Store(own, int64(n))
					default:
						_, err = th.FetchAdd(tally, 1)
					}
					if err != nil {
						panic(err)
					}
				}
			}); err != nil {
				runErr = err
				return
			}
		}
		if crash {
			// Sample the handover: the promotion instant minus the known
			// crash instant is the downtime (quantised by the poll period,
			// which is well under the detection timeout it measures).
			for o.Fabric().OriginHolder(0) == 0 {
				p.Sleep(25 * time.Microsecond)
			}
			cell.downtime = p.Now().Duration() - crashAt
		}
		if err := pr.Join(p); err != nil {
			runErr = err
			return
		}
		if err := pr.Close(p); err != nil {
			runErr = err
			return
		}
		cell.completion = p.Now().Duration()
	})
	if err := e.Run(); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}
	m := o.Metrics()
	cell.replicated = m.Counter("dir.failover.replicated").Value() + m.Counter("tg.failover.replicated").Value()
	cell.promoted = m.Counter("msg.failover.promotions").Value()
	cell.reclaimed = m.Counter("vm.pages.reclaimed").Value()
	cell.orphaned = m.Counter("tg.exit.orphaned").Value()
	for _, h := range []string{"vm.fault.latency.remote", "vm.fault.latency.local"} {
		if max := m.Histogram(h).Max(); max > cell.maxStall {
			cell.maxStall = max
		}
	}
	if crash {
		if cell.promoted == 0 {
			return nil, fmt.Errorf("origin crash never produced a promotion")
		}
		if cell.reclaimed != 0 {
			return nil, fmt.Errorf("%d pages reclaimed despite a live successor", cell.reclaimed)
		}
		if cell.orphaned != 0 {
			return nil, fmt.Errorf("%d exits orphaned despite a promoted origin", cell.orphaned)
		}
	}
	return cell, nil
}
