package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunAtQuickScale smoke-runs every registered experiment
// and checks that the output has the expected structure. This is the
// integration test for the whole stack: every experiment boots full
// machines and runs real workloads.
func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			out, err := exp.Run(Quick)
			if err != nil {
				t.Fatalf("%s (%s): %v", exp.ID, exp.Title, err)
			}
			s := out.String()
			if len(s) == 0 {
				t.Fatalf("%s produced empty output", exp.ID)
			}
			if !strings.Contains(s, "\n") {
				t.Fatalf("%s output is not a table/series:\n%s", exp.ID, s)
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("F4"); !ok {
		t.Fatal("F4 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus experiment found")
	}
	if len(Experiments()) < 15 {
		t.Fatalf("registry has %d experiments", len(Experiments()))
	}
}

// TestHeadlineShapes verifies the qualitative claims the reproduction
// targets: the replicated kernel scales past SMP on contention-heavy
// sweeps, while staying competitive uncontended.
func TestHeadlineShapes(t *testing.T) {
	series, err := F4MmapStorm(Quick)
	if err != nil {
		t.Fatalf("F4: %v", err)
	}
	pop, _ := series.Line("popcorn")
	smp, _ := series.Line("smp")
	if pop == nil || smp == nil {
		t.Fatalf("F4 missing lines:\n%s", series)
	}
	last := len(pop) - 1
	if pop[last] <= smp[last] {
		t.Errorf("F4 at max threads: popcorn %.1f <= smp %.1f cycles/ms\n%s", pop[last], smp[last], series)
	}
	if pop[0] > 2.5*smp[0] || smp[0] > 2.5*pop[0] {
		t.Errorf("F4 single-thread results diverge more than 2.5x: %.1f vs %.1f", pop[0], smp[0])
	}
}

// TestNewFindingsShapes pins the D5 and F9 results: ownership migration
// must beat write forwarding on repeated remote writes, and the KV store's
// popcorn line must rise steeply with request locality while SMP stays
// roughly flat.
func TestNewFindingsShapes(t *testing.T) {
	d5, err := AblationPageOwnership(Quick)
	if err != nil {
		t.Fatalf("D5: %v", err)
	}
	if d5.Rows() != 2 {
		t.Fatalf("D5 rows = %d", d5.Rows())
	}
	f9, err := F9KVStore(Quick)
	if err != nil {
		t.Fatalf("F9: %v", err)
	}
	pop, ok := f9.Line("popcorn")
	if !ok {
		t.Fatalf("F9 missing popcorn line:\n%s", f9)
	}
	smp, _ := f9.Line("smp")
	last := len(pop) - 1
	if pop[last] < 3*pop[0] {
		t.Errorf("F9 popcorn locality gradient too flat: %.0f -> %.0f req/ms\n%s", pop[0], pop[last], f9)
	}
	if smp[last] > 2*smp[0] || smp[0] > 2*smp[last] {
		t.Errorf("F9 smp line not flat: %.0f -> %.0f req/ms", smp[0], smp[last])
	}
}
