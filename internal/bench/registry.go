package bench

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (T1, F4, D2, ...).
	ID string
	// Title is the human-readable name.
	Title string
	// Run executes the experiment and returns its printable result (a
	// *stats.Table or *stats.Series rendered via fmt.Stringer).
	Run func(s Scale) (fmt.Stringer, error)
	// RunTraced, when non-nil, executes the experiment with a causal span
	// collector attached and returns it alongside the normal result. The
	// collector only records virtual timestamps the run already produced, so
	// the printable result is identical to Run's. Experiments without a
	// traced variant leave this nil.
	RunTraced func(s Scale) (fmt.Stringer, *trace.Collector, error)
}

// wrapT adapts a table generator.
func wrapT[T fmt.Stringer](fn func(Scale) (T, error)) func(Scale) (fmt.Stringer, error) {
	return func(s Scale) (fmt.Stringer, error) {
		v, err := fn(s)
		if err != nil {
			return nil, err
		}
		return v, nil
	}
}

// Experiments returns the full experiment registry, sorted by ID.
func Experiments() []Experiment {
	exps := []Experiment{
		{ID: "T1", Title: "Message-layer round trip", Run: wrapT(T1MessageRoundTrip), RunTraced: T1MessageRoundTripTraced},
		{ID: "T2", Title: "Thread migration latency breakdown", Run: wrapT(T2MigrationBreakdown), RunTraced: T2MigrationBreakdownTraced},
		{ID: "T3", Title: "Remote vs local thread creation", Run: wrapT(T3ThreadCreate)},
		{ID: "T4", Title: "Uncontended syscall overhead", Run: wrapT(T4SyscallOverhead)},
		{ID: "T5", Title: "Engine dispatch scaling (serial vs parallel)", Run: wrapT(T5EngineScaling)},
		{ID: "F1", Title: "Thread-creation scalability", Run: wrapT(F1ThreadBomb)},
		{ID: "F2", Title: "Page-fault service latency", Run: wrapT(F2PageFault), RunTraced: F2PageFaultTraced},
		{ID: "F3", Title: "VMA-operation propagation", Run: wrapT(F3VMAPropagation)},
		{ID: "F4", Title: "mmap-storm scalability (headline)", Run: wrapT(F4MmapStorm)},
		{ID: "F4b", Title: "mmap-storm, one shared process", Run: wrapT(F4bSharedMmapStorm)},
		{ID: "F5", Title: "Futex scalability (partitioned)", Run: wrapT(F5FutexChain)},
		{ID: "F5b", Title: "Futex scalability (one shared lock)", Run: wrapT(F5SharedFutex)},
		{ID: "F6", Title: "Page-fault scalability", Run: wrapT(F6FaultSweep)},
		{ID: "F7", Title: "NPB-like compute kernels", Run: wrapT(F7ComputeKernels)},
		{ID: "F8", Title: "Migration cost vs benefit", Run: wrapT(F8MigrationBenefit)},
		{ID: "F9", Title: "Sharded KV store (macro)", Run: wrapT(F9KVStore)},
		{ID: "D1", Title: "Ablation: mmap propagation policy", Run: wrapT(AblationVMAPush)},
		{ID: "D2", Title: "Ablation: dummy-thread pool", Run: wrapT(AblationDummyThread)},
		{ID: "D3", Title: "Ablation: kernel count", Run: wrapT(AblationKernelCount)},
		{ID: "D4", Title: "Ablation: ring slot size", Run: wrapT(AblationSlotSize)},
		{ID: "D5", Title: "Ablation: page ownership vs write forwarding", Run: wrapT(AblationPageOwnership)},
		{ID: "R1", Title: "Fault-sweep transport & degradation counters", Run: wrapT(R1FaultCounters)},
		{ID: "R2", Title: "Overload sweep: flow control off vs on", Run: wrapT(R2OverloadSweep)},
		{ID: "R3", Title: "Origin-failover sweep: replication overhead & downtime", Run: wrapT(R3FailoverSweep)},
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
	return exps
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
