package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/osi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/threadgroup"
	"repro/internal/workload"
)

// AblationDummyThread (D2) compares migration latency with and without the
// pre-created dummy-thread pool.
func AblationDummyThread(s Scale) (*stats.Table, error) {
	tab := stats.NewTable("D2: dummy-thread pre-creation", "variant", "migration-us")
	iters := 16
	if s == Quick {
		iters = 4
	}
	for _, pool := range []int{0, 2} {
		topo := testbed()
		machine, err := hw.NewMachine(topo, hw.DefaultCostModel())
		if err != nil {
			return nil, err
		}
		cc := kernel.DefaultClusterConfig(machine)
		cc.Kernels = popcornKernels
		cc.TG = threadgroup.Config{DummyPool: pool}
		o, err := core.Boot(core.Config{Topology: topo, Cluster: &cc})
		if err != nil {
			return nil, err
		}
		e := o.Engine()
		e.Spawn("driver", func(p *sim.Proc) {
			pr, err := o.StartProcessOn(p, 0)
			if err != nil {
				panic(err)
			}
			if err := pr.Spawn(p, 0, func(th osi.Thread) {
				for i := 0; i < iters; i++ {
					// Fresh destinations so the shadow-revival fast path
					// never hides the task-setup cost.
					must(th.Migrate((th.KernelID() + 1) % o.Kernels()))
				}
			}); err != nil {
				panic(err)
			}
			pr.Wait(p)
			_ = pr.Close(p)
		})
		runErr := e.Run()
		mean := o.Metrics().Histogram("tg.migrate.total").Mean()
		o.Close()
		if runErr != nil {
			return nil, runErr
		}
		name := fmt.Sprintf("pool=%d (pre-created)", pool)
		if pool == 0 {
			name = "pool=0 (create on arrival)"
		}
		tab.AddRow(name, us(mean))
	}
	return tab, nil
}

// AblationSlotSize (D4) sweeps the message ring slot size against the
// migration-payload round trip.
func AblationSlotSize(s Scale) (*stats.Series, error) {
	slots := []int{64, 128, 256, 512, 1024}
	if s == Quick {
		slots = []int{64, 256, 1024}
	}
	xs := make([]float64, len(slots))
	for i, sz := range slots {
		xs[i] = float64(sz)
	}
	series := stats.NewSeries("D4: ring slot size vs RTT", "slot-bytes", "rtt-us", xs...)
	for _, payload := range []int{64, 4096} {
		ys := make([]float64, len(slots))
		for i, slot := range slots {
			rtt, err := onePingCfg(payload, slot)
			if err != nil {
				return nil, err
			}
			ys[i] = float64(rtt.Nanoseconds()) / 1000
		}
		if err := series.AddLine(fmt.Sprintf("%dB payload", payload), ys); err != nil {
			return nil, err
		}
	}
	return series, nil
}

func onePingCfg(size, slotBytes int) (time.Duration, error) {
	e := newEngine(sim.WithSeed(1))
	defer e.Close()
	machine, err := hw.NewMachine(testbed(), hw.DefaultCostModel())
	if err != nil {
		return 0, err
	}
	cfg := msg.DefaultConfig()
	cfg.SlotBytes = slotBytes
	fabric, err := msg.NewFabric(e, machine, 2, []int{0, 8}, cfg, stats.NewRegistry())
	if err != nil {
		return 0, err
	}
	fabric.Endpoint(1).Handle(msg.TypePing, func(p *sim.Proc, m *msg.Message) *msg.Message {
		return &msg.Message{Size: m.Size}
	})
	var rtt time.Duration
	e.Spawn("pinger", func(p *sim.Proc) {
		const iters = 8
		start := p.Now()
		for i := 0; i < iters; i++ {
			if _, err := fabric.Endpoint(0).Call(p, &msg.Message{Type: msg.TypePing, To: 1, Size: size}); err != nil {
				panic(err)
			}
		}
		rtt = p.Now().Sub(start) / iters
	})
	if err := e.Run(); err != nil {
		return 0, err
	}
	return rtt, nil
}

// AblationVMAPush (D1) compares lazy mmap propagation (the paper's design)
// with eager pushing, on a workload where remote threads fault into fresh
// mappings.
func AblationVMAPush(s Scale) (*stats.Table, error) {
	tab := stats.NewTable("D1: mmap propagation policy", "variant", "elapsed-us", "vma-fetch RPCs", "update pushes")
	iters := 8
	if s == Quick {
		iters = 3
	}
	for _, eager := range []bool{false, true} {
		o, err := bootPopcorn(testbed(), popcornKernels)
		if err != nil {
			return nil, err
		}
		for k := 0; k < o.Kernels(); k++ {
			o.Kernel(k).VM.SetEagerMapPush(eager)
		}
		e := o.Engine()
		var elapsed time.Duration
		e.Spawn("driver", func(p *sim.Proc) {
			pr, err := o.StartProcessOn(p, 0)
			if err != nil {
				panic(err)
			}
			// Warm replicas on every kernel first.
			warm := sim.NewWaitGroup()
			for k := 1; k < o.Kernels(); k++ {
				warm.Add(1)
				if err := pr.Spawn(p, k, func(th osi.Thread) {
					a, err := th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
					must(err)
					must(th.Store(a, 1))
					warm.Done()
				}); err != nil {
					panic(err)
				}
			}
			warm.Wait(p)
			start := p.Now()
			for i := 0; i < iters; i++ {
				var addr mem.Addr
				step := sim.NewWaitGroup()
				step.Add(1)
				if err := pr.Spawn(p, 0, func(th osi.Thread) {
					a, err := th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
					must(err)
					addr = a
					step.Done()
				}); err != nil {
					panic(err)
				}
				step.Wait(p)
				// Every kernel faults into the new mapping.
				faults := sim.NewWaitGroup()
				for k := 1; k < o.Kernels(); k++ {
					faults.Add(1)
					if err := pr.Spawn(p, k, func(th osi.Thread) {
						mustV(th.Load(addr))
						faults.Done()
					}); err != nil {
						panic(err)
					}
				}
				faults.Wait(p)
			}
			elapsed = p.Now().Sub(start)
			pr.Wait(p)
			_ = pr.Close(p)
		})
		runErr := e.Run()
		fetches := o.Metrics().Counter("vm.vmafetch").Value()
		pushes := o.Metrics().Counter("vm.update.pushed").Value()
		o.Close()
		if runErr != nil {
			return nil, runErr
		}
		name := "lazy (paper design)"
		if eager {
			name = "eager push"
		}
		tab.AddRow(name, us(elapsed), fmt.Sprint(fetches), fmt.Sprint(pushes))
	}
	return tab, nil
}

// AblationKernelCount (D3) sweeps kernels-per-machine for the mmap storm:
// the partitioning granularity trade-off (more kernels = less intra-kernel
// contention but more cross-kernel traffic for shared work).
func AblationKernelCount(s Scale) (*stats.Series, error) {
	kernelCounts := []int{1, 2, 4, 8, 16}
	if s == Quick {
		kernelCounts = []int{1, 4, 16}
	}
	threads, iters := 32, 6
	if s == Quick {
		threads, iters = 16, 3
	}
	xs := make([]float64, len(kernelCounts))
	for i, k := range kernelCounts {
		xs[i] = float64(k)
	}
	series := stats.NewSeries("D3: kernel count vs mmap-storm throughput", "kernels", "cycles/ms", xs...)
	ys := make([]float64, len(kernelCounts))
	for i, kernels := range kernelCounts {
		o, err := bootPopcorn(testbed(), kernels)
		if err != nil {
			return nil, err
		}
		res, err := workload.MmapStorm(o, workload.MmapStormSpec{Threads: threads, Iters: iters, Pages: 4})
		o.Close()
		if err != nil {
			return nil, err
		}
		ys[i] = res.Throughput() / 1000
	}
	if err := series.AddLine("popcorn", ys); err != nil {
		return nil, err
	}
	return series, nil
}

// AblationPageOwnership (D5) compares the paper's ownership-migration
// protocol (MSI) against forwarding every remote write to the origin, on
// the two patterns that separate them: repeated writes from one remote
// kernel (locality: MSI amortises one transfer over many writes) and
// fine-grained alternation between two kernels (ping-pong: MSI moves the
// page twice per round, forwarding pays one RPC per write).
func AblationPageOwnership(s Scale) (*stats.Table, error) {
	writes := 64
	if s == Quick {
		writes = 16
	}
	tab := stats.NewTable("D5: page ownership vs write forwarding (elapsed µs)",
		"pattern", "ownership (paper)", "write-forwarding")
	patterns := []struct {
		name string
		run  func(o *core.OS, p *sim.Proc) error
	}{
		{"repeated remote writes", func(o *core.OS, p *sim.Proc) error {
			pr, err := o.StartProcessOn(p, 0)
			if err != nil {
				return err
			}
			if err := pr.Spawn(p, 1, func(th osi.Thread) {
				addr, err := th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
				must(err)
				for i := 0; i < writes; i++ {
					must(th.Store(addr, int64(i)))
				}
			}); err != nil {
				return err
			}
			pr.Wait(p)
			return pr.Close(p)
		}},
		{"alternating writers", func(o *core.OS, p *sim.Proc) error {
			pr, err := o.StartProcessOn(p, 0)
			if err != nil {
				return err
			}
			var addr mem.Addr
			ready := sim.NewWaitGroup()
			ready.Add(1)
			turn := sim.NewWaitGroup()
			if err := pr.Spawn(p, 0, func(th osi.Thread) {
				a, err := th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
				must(err)
				addr = a
				ready.Done()
			}); err != nil {
				return err
			}
			ready.Wait(p)
			// Two writers on different kernels strictly alternate.
			for w := 0; w < 2; w++ {
				w := w
				turn.Add(1)
				if err := pr.Spawn(p, 1+w, func(th osi.Thread) {
					defer turn.Done()
					for i := 0; i < writes/2; i++ {
						for {
							v, err := th.Load(addr)
							must(err)
							if int(v)%2 == w {
								break
							}
							th.Compute(200 * time.Nanosecond)
						}
						must(th.Store(addr, int64(2*i+w+1)))
					}
				}); err != nil {
					return err
				}
			}
			turn.Wait(p)
			pr.Wait(p)
			return pr.Close(p)
		}},
	}
	for _, pat := range patterns {
		var cells [2]string
		for mode := 0; mode < 2; mode++ {
			o, err := bootPopcorn(testbed(), popcornKernels)
			if err != nil {
				return nil, err
			}
			if mode == 1 {
				for k := 0; k < o.Kernels(); k++ {
					o.Kernel(k).VM.SetWriteForwarding(true)
				}
			}
			e := o.Engine()
			var elapsed time.Duration
			e.Spawn("driver", func(p *sim.Proc) {
				start := p.Now()
				if err := pat.run(o, p); err != nil {
					panic(err)
				}
				elapsed = p.Now().Sub(start)
			})
			runErr := e.Run()
			o.Close()
			if runErr != nil {
				return nil, runErr
			}
			cells[mode] = us(elapsed)
		}
		tab.AddRow(pat.name, cells[0], cells[1])
	}
	return tab, nil
}
