package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinj"
	"repro/internal/hw"
	"repro/internal/msg"
	"repro/internal/stats"
	"repro/internal/workload"
)

// R1FaultCounters runs the migration and futex workloads under the fault
// sweep's plan (drop/dup/delay on every link, a kernel crash mid-migration)
// and tabulates what the hardened transport and the degradation paths
// absorbed: per-link drops, retransmissions, duplicate suppressions,
// timeouts, reclaimed pages, lost threads. Runs may degrade (dead-peer
// errors) but must terminate; any other error fails the experiment.
func R1FaultCounters(s Scale) (*stats.Table, error) {
	seeds := 16
	if s == Quick {
		seeds = 4
	}
	agg := stats.NewRegistry()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, wl := range []string{"migration", "futex"} {
			if err := oneFaultRun(wl, seed, agg); err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", wl, seed, err)
			}
		}
	}
	t := stats.NewTable(fmt.Sprintf("R1: fault-sweep transport & degradation counters (%d seeds, migration+futex)", seeds),
		"counter", "total")
	for _, c := range faultCounterRows {
		t.AddRow(c.desc, fmt.Sprintf("%d", agg.Counter(c.name).Value()))
	}
	return t, nil
}

// faultCounterRows maps the surfaced counters to their table descriptions;
// it is also the set oneFaultRun aggregates across seeds.
var faultCounterRows = []struct{ name, desc string }{
	{"msg.fault.drop", "messages dropped at commit"},
	{"msg.fault.drop.k0-k1", "  of which on link k0->k1"},
	{"msg.fault.drop.k1-k0", "  of which on link k1->k0"},
	{"msg.fault.dup", "messages duplicated"},
	{"msg.fault.delay", "messages delayed out of FIFO order"},
	{"msg.fault.timeout", "RPC reply timeouts"},
	{"msg.fault.retransmit", "RPC retransmissions"},
	{"msg.fault.dupdrop", "duplicates suppressed in flight"},
	{"msg.fault.replayed", "duplicates answered from reply cache"},
	{"msg.fault.dedup_hits", "dedup-window hits (suppressed + replayed)"},
	{"msg.fault.fenced", "stale-incarnation messages fenced"},
	{"msg.fault.lost", "non-RPC messages lost after redelivery budget"},
	{"msg.fault.crash", "kernel crashes"},
	{"msg.fault.declared", "dead-peer declarations by survivors"},
	{"msg.heartbeat.sent", "heartbeats sent in failure windows"},
	{"msg.fault.rpcdead", "RPCs failed by dead-peer declaration"},
	{"msg.fault.fastfail", "RPCs fast-failed post-declaration"},
	{"vm.pages.reclaimed", "page ownerships reclaimed from dead kernels"},
	{"vm.inval.deadpeer", "invalidations absorbed by peer death"},
	{"core.threads.lost", "threads lost with crashed kernels"},
	{"futex.wait.deadhome", "futex waits error-woken (home died)"},
	{"futex.waiter.reaped", "remote futex waiters reaped"},
}

// oneFaultRun mirrors one `popcornmc -faults` run: the same 2-kernel
// testbed, tie-shuffled schedule, and fault plan, with seed doubling as the
// fault seed. Counters are accumulated into agg.
func oneFaultRun(wl string, seed int64, agg *stats.Registry) error {
	o, err := core.Boot(core.Config{
		Topology: hw.Topology{Cores: 16, NUMANodes: 2}, Seed: seed, TieShuffle: true,
	})
	if err != nil {
		return err
	}
	defer o.Close()
	plan := &faultinj.Plan{Seed: seed}
	plan.Rules = append(plan.Rules,
		// Exempt the migration request/reply so the crash trigger below is
		// the only fault that can hit the migration protocol itself.
		faultinj.Rule{From: faultinj.Wildcard, To: faultinj.Wildcard, Type: int(msg.TypeMigrate)},
		faultinj.Rule{
			From: faultinj.Wildcard, To: faultinj.Wildcard, Type: faultinj.Wildcard,
			DropP: 0.12, DupP: 0.08, DelayP: 0.12, DelayMax: 20 * time.Microsecond,
		})
	if wl == "migration" {
		plan.TypeCrashes = append(plan.TypeCrashes, faultinj.TypeCrash{
			Node: 1, Type: int(msg.TypeMigrate), Nth: 2, After: 2 * time.Microsecond,
		})
	}
	o.EnableFaults(plan, msg.FaultConfig{})
	switch wl {
	case "migration":
		_, err = workload.MigrationBenefit(o, workload.MigrationBenefitSpec{Pages: 16, Rounds: 2})
		if err == nil {
			_, err = workload.MigrationBenefit(o, workload.MigrationBenefitSpec{Pages: 16, Rounds: 2, Migrate: true})
		}
	case "futex":
		_, err = workload.FutexChain(o, workload.FutexChainSpec{Threads: 8, Iters: 4, CS: time.Microsecond, Shared: true})
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}
	if err != nil && !faultDegradation(err) {
		return err
	}
	m := o.Metrics()
	for _, c := range faultCounterRows {
		agg.Counter(c.name).Add(m.Counter(c.name).Value())
	}
	return nil
}

// faultDegradation reports whether err is an acceptable consequence of the
// run's adversity — a dead kernel from the fault plan, or a backpressure
// rejection from the overload plane — rather than a bug.
func faultDegradation(err error) bool {
	if msg.IsDeadPeer(err) || msg.IsBackpressure(err) {
		return true
	}
	s := err.Error()
	for _, marker := range []string{"dead kernel", "peer kernel is dead", "died while task waited", "refused under backpressure"} {
		if strings.Contains(s, marker) {
			return true
		}
	}
	return false
}
