package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/osi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// T1MessageRoundTrip measures the message layer: RPC round-trip latency
// versus payload size, for a same-NUMA-node kernel pair and a cross-node
// pair.
func T1MessageRoundTrip(s Scale) (*stats.Series, error) {
	return t1Run(s, nil)
}

// T1MessageRoundTripTraced is T1 with a causal span collector attached: the
// returned collector holds the rpc/wire/handle span trees of every measured
// ping, which the critical-path table attributes leg by leg.
func T1MessageRoundTripTraced(s Scale) (fmt.Stringer, *trace.Collector, error) {
	col := trace.NewCollector()
	series, err := t1Run(s, col)
	return series, col, err
}

// t1Run is the shared T1 body. When col is non-nil every per-ping fabric
// attaches it, so one collector accumulates spans across all the
// configurations (the per-ping engines run sequentially, so span IDs stay
// deterministic).
func t1Run(s Scale, col *trace.Collector) (*stats.Series, error) {
	sizes := []int{64, 256, 1024, 4096, 16384, 65536}
	if s == Quick {
		sizes = []int{64, 4096, 65536}
	}
	xs := make([]float64, len(sizes))
	for i, sz := range sizes {
		xs[i] = float64(sz)
	}
	series := stats.NewSeries("T1: message round-trip latency", "payload-bytes", "rtt-us", xs...)
	for _, cross := range []bool{false, true} {
		ys := make([]float64, len(sizes))
		for i, size := range sizes {
			rtt, err := onePing(size, cross, col)
			if err != nil {
				return nil, err
			}
			ys[i] = float64(rtt.Nanoseconds()) / 1000
		}
		name := "same-node"
		if cross {
			name = "cross-node"
		}
		if err := series.AddLine(name, ys); err != nil {
			return nil, err
		}
	}
	return series, nil
}

func onePing(size int, crossNode bool, col *trace.Collector) (time.Duration, error) {
	e := newEngine(sim.WithSeed(1))
	defer e.Close()
	machine, err := hw.NewMachine(testbed(), hw.DefaultCostModel())
	if err != nil {
		return 0, err
	}
	// Kernels 0,1 on node 0; kernel 2 on node 1.
	fabric, err := msg.NewFabric(e, machine, 3, []int{0, 8, 32}, msg.DefaultConfig(), stats.NewRegistry())
	if err != nil {
		return 0, err
	}
	fabric.SetCollector(col)
	dst := msg.NodeID(1)
	if crossNode {
		dst = 2
	}
	fabric.Endpoint(dst).Handle(msg.TypePing, func(p *sim.Proc, m *msg.Message) *msg.Message {
		return &msg.Message{Size: m.Size}
	})
	var rtt time.Duration
	e.Spawn("pinger", func(p *sim.Proc) {
		// Warm-up then measure a batch.
		const iters = 8
		if _, err := fabric.Endpoint(0).Call(p, &msg.Message{Type: msg.TypePing, To: dst, Size: size}); err != nil {
			panic(err)
		}
		start := p.Now()
		for i := 0; i < iters; i++ {
			if _, err := fabric.Endpoint(0).Call(p, &msg.Message{Type: msg.TypePing, To: dst, Size: size}); err != nil {
				panic(err)
			}
		}
		rtt = p.Now().Sub(start) / iters
	})
	if err := e.Run(); err != nil {
		return 0, err
	}
	return rtt, nil
}

// T2MigrationBreakdown migrates one thread between kernels and reports the
// per-phase virtual-time costs of the paper's migration protocol.
func T2MigrationBreakdown(s Scale) (*stats.Table, error) {
	tab, _, err := t2Run(s, false)
	return tab, err
}

// T2MigrationBreakdownTraced is T2 with the causal tracer attached: the
// collector holds one core.migrate span tree per migration, so the
// critical-path table can be cross-checked against the histogram means the
// untraced table reports.
func T2MigrationBreakdownTraced(s Scale) (fmt.Stringer, *trace.Collector, error) {
	return t2Run(s, true)
}

// t2Run is the shared T2 body; traced attaches a span collector to the
// booted OS (reads only virtual timestamps, so the table is unchanged).
func t2Run(s Scale, traced bool) (*stats.Table, *trace.Collector, error) {
	tab := stats.NewTable("T2: thread migration latency breakdown", "phase", "mean-us", "share")
	o, err := bootPopcorn(testbed(), popcornKernels)
	if err != nil {
		return nil, nil, err
	}
	defer o.Close()
	var col *trace.Collector
	if traced {
		col = o.AttachTracer()
	}
	e := o.Engine()
	iters := 16
	if s == Quick {
		iters = 4
	}
	e.Spawn("driver", func(p *sim.Proc) {
		pr, err := o.StartProcessOn(p, 0)
		if err != nil {
			panic(err)
		}
		if err := pr.Spawn(p, 0, func(th osi.Thread) {
			for i := 0; i < iters; i++ {
				if err := th.Migrate((th.KernelID() + 1) % o.Kernels()); err != nil {
					panic(err)
				}
			}
		}); err != nil {
			panic(err)
		}
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		return nil, nil, err
	}
	reg := o.Metrics()
	total := reg.Histogram("tg.migrate.total").Mean()
	rows := []struct {
		name string
		h    string
	}{
		{"checkpoint (save context)", "tg.migrate.checkpoint"},
		{"transfer (message rtt incl. resume ack)", "tg.migrate.rpc"},
		{"dest task setup (dummy pool)", "tg.migrate.setup"},
		{"context import", "tg.migrate.import"},
		{"total", "tg.migrate.total"},
	}
	for _, r := range rows {
		mean := reg.Histogram(r.h).Mean()
		share := "-"
		if total > 0 && r.h != "tg.migrate.total" {
			share = fmt.Sprintf("%.0f%%", 100*float64(mean)/float64(total))
		}
		tab.AddRow(r.name, us(mean), share)
	}
	return tab, col, nil
}

// T3ThreadCreate measures thread creation latency: local clone, first
// remote clone (cold replica), and subsequent remote clones (warm).
func T3ThreadCreate(s Scale) (*stats.Table, error) {
	tab := stats.NewTable("T3: thread creation latency", "variant", "latency-us")
	o, err := bootPopcorn(testbed(), popcornKernels)
	if err != nil {
		return nil, err
	}
	defer o.Close()
	e := o.Engine()
	var localLat, coldLat, warmLat time.Duration
	e.Spawn("driver", func(p *sim.Proc) {
		pr, err := o.StartProcessOn(p, 0)
		if err != nil {
			panic(err)
		}
		measure := func(k int) time.Duration {
			start := p.Now()
			if err := pr.Spawn(p, k, func(osi.Thread) {}); err != nil {
				panic(err)
			}
			return p.Now().Sub(start)
		}
		localLat = measure(0)
		coldLat = measure(1)
		const warmIters = 8
		var sum time.Duration
		for i := 0; i < warmIters; i++ {
			sum += measure(1)
		}
		warmLat = sum / warmIters
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		return nil, err
	}
	tab.AddRow("local clone", us(localLat))
	tab.AddRow("remote clone, cold (replica setup)", us(coldLat))
	tab.AddRow("remote clone, warm", us(warmLat))
	return tab, nil
}

// T4SyscallOverhead compares uncontended fast-path operations on the
// replicated kernel and on SMP: the SSI should cost almost nothing when no
// cross-kernel work is needed.
func T4SyscallOverhead(s Scale) (*stats.Table, error) {
	tab := stats.NewTable("T4: uncontended operation latency (one thread)", "operation", "popcorn-us", "smp-us")
	type probe struct {
		name string
		run  func(th osi.Thread) error
	}
	var dataAddr mem.Addr
	probes := []probe{
		{"mmap 1 page", func(th osi.Thread) error {
			a, err := th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
			dataAddr = a
			return err
		}},
		{"first-touch store (fault)", func(th osi.Thread) error {
			return th.Store(dataAddr, 1)
		}},
		{"cached store", func(th osi.Thread) error {
			return th.Store(dataAddr, 2)
		}},
		{"futex wake, no waiters", func(th osi.Thread) error {
			_, err := th.FutexWake(dataAddr, 1)
			return err
		}},
		{"munmap 1 page", func(th osi.Thread) error {
			return th.Munmap(dataAddr, hw.PageSize)
		}},
	}
	results := make(map[string][2]time.Duration)
	for osIdx, ob := range standardOSes(testbed(), popcornKernels) {
		o, closeOS, err := ob.boot()
		if err != nil {
			return nil, err
		}
		e := o.Engine()
		e.Spawn("driver", func(p *sim.Proc) {
			pr, err := o.StartProcess(p)
			if err != nil {
				panic(err)
			}
			if err := pr.Spawn(p, 0, func(th osi.Thread) {
				for _, pb := range probes {
					start := th.Proc().Now()
					if err := pb.run(th); err != nil {
						panic(fmt.Sprintf("%s %s: %v", ob.name, pb.name, err))
					}
					d := th.Proc().Now().Sub(start)
					r := results[pb.name]
					r[osIdx] = d
					results[pb.name] = r
				}
			}); err != nil {
				panic(err)
			}
			pr.Wait(p)
			_ = pr.Close(p)
		})
		runErr := e.Run()
		closeOS()
		if runErr != nil {
			return nil, runErr
		}
	}
	for _, pb := range probes {
		r := results[pb.name]
		tab.AddRow(pb.name, us(r[0]), us(r[1]))
	}
	return tab, nil
}

// F2PageFault measures fault service latency by directory state: local
// zero-fill at the origin, remote zero-fill, remote read of a modified
// page, and a write that must invalidate remote readers.
func F2PageFault(s Scale) (*stats.Table, error) {
	tab, _, err := f2Run(s, false)
	return tab, err
}

// F2PageFaultTraced is F2 with the causal tracer attached: each measured
// fault leaves a vm.fault span tree whose legs (directory transaction, page
// transfer wire legs, invalidation fan-out) the critical-path table
// attributes.
func F2PageFaultTraced(s Scale) (fmt.Stringer, *trace.Collector, error) {
	return f2Run(s, true)
}

// f2Run is the shared F2 body; traced attaches a span collector to the
// booted OS.
func f2Run(s Scale, traced bool) (*stats.Table, *trace.Collector, error) {
	tab := stats.NewTable("F2: page-fault service latency", "fault type", "latency-us")
	o, err := bootPopcorn(testbed(), popcornKernels)
	if err != nil {
		return nil, nil, err
	}
	defer o.Close()
	var col *trace.Collector
	if traced {
		col = o.AttachTracer()
	}
	e := o.Engine()
	lat := make(map[string]time.Duration)
	e.Spawn("driver", func(p *sim.Proc) {
		pr, err := o.StartProcessOn(p, 0)
		if err != nil {
			panic(err)
		}
		var base mem.Addr
		step := sim.NewWaitGroup()
		run := func(k int, name string, fn func(th osi.Thread)) {
			step.Add(1)
			if err := pr.Spawn(p, k, func(th osi.Thread) {
				defer step.Done()
				start := th.Proc().Now()
				fn(th)
				if name != "" {
					lat[name] = th.Proc().Now().Sub(start)
				}
			}); err != nil {
				panic(err)
			}
			step.Wait(p)
		}
		run(0, "", func(th osi.Thread) {
			a, err := th.Mmap(64*hw.PageSize, mem.ProtRead|mem.ProtWrite)
			if err != nil {
				panic(err)
			}
			base = a
		})
		pg := func(i int) mem.Addr { return base + mem.Addr(i*hw.PageSize) }
		run(0, "local zero-fill (origin)", func(th osi.Thread) { must(th.Store(pg(0), 1)) })
		run(1, "remote zero-fill", func(th osi.Thread) { must(th.Store(pg(1), 1)) })
		run(0, "", func(th osi.Thread) { must(th.Store(pg(2), 7)) })
		run(1, "remote read of modified page", func(th osi.Thread) { mustV(th.Load(pg(2))) })
		// Build a 3-sharer page, then write it from a fourth kernel.
		run(0, "", func(th osi.Thread) { must(th.Store(pg(3), 9)) })
		run(1, "", func(th osi.Thread) { mustV(th.Load(pg(3))) })
		run(2, "", func(th osi.Thread) { mustV(th.Load(pg(3))) })
		run(3, "write invalidating 3 sharers", func(th osi.Thread) { must(th.Store(pg(3), 10)) })
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		return nil, nil, err
	}
	for _, name := range []string{
		"local zero-fill (origin)",
		"remote zero-fill",
		"remote read of modified page",
		"write invalidating 3 sharers",
	} {
		tab.AddRow(name, us(lat[name]))
	}
	return tab, col, nil
}

// F3VMAPropagation measures mmap/mprotect/munmap latency at the origin as
// the group spans more kernels (the synchronous-push cost).
func F3VMAPropagation(s Scale) (*stats.Series, error) {
	replicaCounts := []int{0, 1, 2, 4, 7}
	if s == Quick {
		replicaCounts = []int{0, 2, 7}
	}
	xs := make([]float64, len(replicaCounts))
	for i, r := range replicaCounts {
		xs[i] = float64(r + 1) // kernels hosting the group
	}
	series := stats.NewSeries("F3: VMA operation latency vs group span", "kernels-in-group", "latency-us", xs...)
	mmapYs := make([]float64, len(replicaCounts))
	protYs := make([]float64, len(replicaCounts))
	unmapYs := make([]float64, len(replicaCounts))
	for i, replicas := range replicaCounts {
		o, err := bootPopcorn(testbed(), popcornKernels)
		if err != nil {
			return nil, err
		}
		e := o.Engine()
		var mm, pt, um time.Duration
		e.Spawn("driver", func(p *sim.Proc) {
			pr, err := o.StartProcessOn(p, 0)
			if err != nil {
				panic(err)
			}
			var base mem.Addr
			ready := sim.NewWaitGroup()
			ready.Add(1)
			hold := sim.NewWaitGroup()
			hold.Add(1)
			// Materialise replicas: one thread per extra kernel touches a
			// page so the kernel holds group state.
			if err := pr.Spawn(p, 0, func(th osi.Thread) {
				a, err := th.Mmap(uint64(8+replicas)*hw.PageSize, mem.ProtRead|mem.ProtWrite)
				if err != nil {
					panic(err)
				}
				base = a
				ready.Done()
				hold.Wait(th.Proc())
			}); err != nil {
				panic(err)
			}
			ready.Wait(p)
			touched := sim.NewWaitGroup()
			for r := 0; r < replicas; r++ {
				touched.Add(1)
				if err := pr.Spawn(p, 1+r, func(th osi.Thread) {
					must(th.Store(base+mem.Addr((8+r)*hw.PageSize), 1))
					touched.Done()
				}); err != nil {
					panic(err)
				}
			}
			touched.Wait(p)
			// Measure from the origin.
			meas := sim.NewWaitGroup()
			meas.Add(1)
			if err := pr.Spawn(p, 0, func(th osi.Thread) {
				defer meas.Done()
				const iters = 4
				start := th.Proc().Now()
				addrs := make([]mem.Addr, iters)
				for i := 0; i < iters; i++ {
					a, err := th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
					must(err)
					addrs[i] = a
				}
				mm = th.Proc().Now().Sub(start) / iters
				start = th.Proc().Now()
				for i := 0; i < iters; i++ {
					must(th.Mprotect(base, hw.PageSize, mem.ProtRead))
					must(th.Mprotect(base, hw.PageSize, mem.ProtRead|mem.ProtWrite))
				}
				pt = th.Proc().Now().Sub(start) / (2 * iters)
				start = th.Proc().Now()
				for i := 0; i < iters; i++ {
					must(th.Munmap(addrs[i], hw.PageSize))
				}
				um = th.Proc().Now().Sub(start) / iters
			}); err != nil {
				panic(err)
			}
			meas.Wait(p)
			hold.Done()
			pr.Wait(p)
			_ = pr.Close(p)
		})
		runErr := e.Run()
		o.Close()
		if runErr != nil {
			return nil, runErr
		}
		mmapYs[i] = float64(mm.Nanoseconds()) / 1000
		protYs[i] = float64(pt.Nanoseconds()) / 1000
		unmapYs[i] = float64(um.Nanoseconds()) / 1000
	}
	if err := series.AddLine("mmap (lazy)", mmapYs); err != nil {
		return nil, err
	}
	if err := series.AddLine("mprotect (pushed)", protYs); err != nil {
		return nil, err
	}
	if err := series.AddLine("munmap (pushed)", unmapYs); err != nil {
		return nil, err
	}
	return series, nil
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func mustV(_ int64, err error) {
	if err != nil {
		panic(err)
	}
}
