package bench

import "testing"

// TestExperimentsAreDeterministic regenerates two experiments twice and
// requires byte-identical output — the property that makes every number in
// EXPERIMENTS.md exactly reproducible.
func TestExperimentsAreDeterministic(t *testing.T) {
	for _, id := range []string{"F4", "T2", "F8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, ok := Find(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			first, err := exp.Run(Quick)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			second, err := exp.Run(Quick)
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if first.String() != second.String() {
				t.Fatalf("non-deterministic output:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first, second)
			}
		})
	}
}
