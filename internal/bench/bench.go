// Package bench regenerates every table and figure of the (reconstructed)
// evaluation: each exported function runs the corresponding experiment on
// freshly booted simulated machines and returns the rows/series the paper
// reports. cmd/benchtable prints them; bench_test.go wraps them as Go
// benchmarks. All quantities are virtual time, deterministic for a given
// scale factor.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/multikernel"
	"repro/internal/osi"
	"repro/internal/smp"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale selects experiment sizes.
type Scale int

// Scales: Quick keeps everything small for tests/benchmarks; Full is the
// paper-style sweep printed by cmd/benchtable.
const (
	Quick Scale = iota
	Full
)

// testbed is the machine class the paper evaluates on: a 64-core
// dual-socket x86 server.
func testbed() hw.Topology { return hw.Topology{Cores: 64, NUMANodes: 2} }

// popcornKernels is the default kernel count for the replicated-kernel OS
// on the testbed (8 kernels x 8 cores).
const popcornKernels = 8

func bootPopcorn(topo hw.Topology, kernels int) (*core.OS, error) {
	machine, err := hw.NewMachine(topo, hw.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	cc := kernel.DefaultClusterConfig(machine)
	cc.Kernels = kernels
	cc.FramesPerKernel = 1 << 16
	return core.Boot(core.Config{Topology: topo, Cluster: &cc, Engine: EngineKind})
}

func bootSMP(topo hw.Topology) (*smp.OS, error) {
	return smp.Boot(smp.Config{Topology: topo, FramesPerNode: 1 << 18})
}

func bootMK(topo hw.Topology, kernels int) (*multikernel.OS, error) {
	return multikernel.Boot(multikernel.Config{Topology: topo, Kernels: kernels, FramesPerKernel: 1 << 16, Engine: EngineKind})
}

// threadCounts returns the sweep of thread counts for scalability figures.
func threadCounts(s Scale) []int {
	if s == Quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

// runOn runs an osi workload on a freshly booted OS of each flavour and
// returns throughput lines for a series.
type osBoot struct {
	name string
	boot func() (osi.OS, func(), error)
}

func standardOSes(topo hw.Topology, kernels int) []osBoot {
	return []osBoot{
		{name: "popcorn", boot: func() (osi.OS, func(), error) {
			o, err := bootPopcorn(topo, kernels)
			if err != nil {
				return nil, nil, err
			}
			return o, o.Close, nil
		}},
		{name: "smp", boot: func() (osi.OS, func(), error) {
			o, err := bootSMP(topo)
			if err != nil {
				return nil, nil, err
			}
			return o, o.Close, nil
		}},
	}
}

// sweep runs `run` for every OS flavour and thread count, returning ops/ms
// series (plus the multikernel line when mkRun is non-nil).
func sweep(s Scale, title, ylabel string,
	run func(o osi.OS, threads int) (workload.Result, error),
	mkRun func(o *multikernel.OS, threads int) (workload.Result, error),
) (*stats.Series, error) {
	topo := testbed()
	counts := threadCounts(s)
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	series := stats.NewSeries(title, "threads", ylabel, xs...)
	for _, ob := range standardOSes(topo, popcornKernels) {
		ys := make([]float64, len(counts))
		for i, threads := range counts {
			o, closeOS, err := ob.boot()
			if err != nil {
				return nil, fmt.Errorf("boot %s: %w", ob.name, err)
			}
			res, err := run(o, threads)
			closeOS()
			if err != nil {
				return nil, fmt.Errorf("%s threads=%d: %w", ob.name, threads, err)
			}
			ys[i] = res.Throughput() / 1000 // ops per virtual millisecond
		}
		if err := series.AddLine(ob.name, ys); err != nil {
			return nil, err
		}
	}
	if mkRun != nil {
		ys := make([]float64, len(counts))
		for i, threads := range counts {
			o, err := bootMK(topo, popcornKernels)
			if err != nil {
				return nil, fmt.Errorf("boot multikernel: %w", err)
			}
			res, err := mkRun(o, threads)
			o.Close()
			if err != nil {
				return nil, fmt.Errorf("multikernel threads=%d: %w", threads, err)
			}
			ys[i] = res.Throughput() / 1000
		}
		if err := series.AddLine("multikernel", ys); err != nil {
			return nil, err
		}
	}
	return series, nil
}

func us(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1000) }
