package bench

import (
	"fmt"
	"time"

	"repro/internal/multikernel"
	"repro/internal/osi"
	"repro/internal/stats"
	"repro/internal/workload"
)

// F1ThreadBomb sweeps concurrent thread creation across OSes (figure 1).
func F1ThreadBomb(s Scale) (*stats.Series, error) {
	children := 16
	if s == Quick {
		children = 4
	}
	return sweep(s, "F1: thread-creation scalability", "creates/ms",
		func(o osi.OS, threads int) (workload.Result, error) {
			return workload.ThreadBomb(o, workload.ThreadBombSpec{Spawners: threads, Children: children})
		},
		func(o *multikernel.OS, threads int) (workload.Result, error) {
			return workload.MKThreadBomb(o, workload.ThreadBombSpec{Spawners: threads, Children: children})
		})
}

// F4MmapStorm sweeps the map/touch/unmap loop (the headline figure: the
// abstract's "up to 40% faster" claim lands here).
func F4MmapStorm(s Scale) (*stats.Series, error) {
	iters, pages := 8, 4
	if s == Quick {
		iters = 3
	}
	return sweep(s, "F4: mmap-storm scalability", "map-unmap-cycles/ms",
		func(o osi.OS, threads int) (workload.Result, error) {
			return workload.MmapStorm(o, workload.MmapStormSpec{Threads: threads, Iters: iters, Pages: pages})
		},
		func(o *multikernel.OS, threads int) (workload.Result, error) {
			return workload.MKMemStorm(o, workload.MmapStormSpec{Threads: threads, Iters: iters, Pages: pages})
		})
}

// F4bSharedMmapStorm is the honest companion to F4: all threads share one
// process, so every VMA operation funnels through the group origin — the
// replicated kernel's known weak spot for this operation class.
func F4bSharedMmapStorm(s Scale) (*stats.Series, error) {
	iters, pages := 6, 2
	if s == Quick {
		iters = 2
	}
	return sweep(s, "F4b: mmap-storm, one shared process", "map-unmap-cycles/ms",
		func(o osi.OS, threads int) (workload.Result, error) {
			return workload.MmapStorm(o, workload.MmapStormSpec{Threads: threads, Iters: iters, Pages: pages, Shared: true})
		}, nil)
}

// F5FutexChain sweeps contended futex lock/unlock cycles (partitioned,
// server-style: one lock per kernel partition).
func F5FutexChain(s Scale) (*stats.Series, error) {
	iters := 16
	if s == Quick {
		iters = 5
	}
	return sweep(s, "F5: futex scalability (partitioned locks)", "lock-cycles/ms",
		func(o osi.OS, threads int) (workload.Result, error) {
			return workload.FutexChain(o, workload.FutexChainSpec{Threads: threads, Iters: iters, CS: 2 * time.Microsecond})
		}, nil)
}

// F6FaultSweep sweeps concurrent first-touch faulting.
func F6FaultSweep(s Scale) (*stats.Series, error) {
	pages := 128
	if s == Quick {
		pages = 32
	}
	return sweep(s, "F6: page-fault scalability", "faults/ms",
		func(o osi.OS, threads int) (workload.Result, error) {
			return workload.FaultSweep(o, workload.FaultSweepSpec{Threads: threads, Pages: pages})
		},
		func(o *multikernel.OS, threads int) (workload.Result, error) {
			return workload.MKFaultSweep(o, workload.FaultSweepSpec{Threads: threads, Pages: pages})
		})
}

// F7ComputeKernels runs the NPB-like kernels at a fixed thread count on all
// three OSes (table-style figure: one row per kernel).
func F7ComputeKernels(s Scale) (*stats.Table, error) {
	// NPB-class kernels are compute-dominated: class-S-like sizing gives
	// several milliseconds of work between synchronisation phases.
	threads, iters, work := 32, 4, 5*time.Millisecond
	if s == Quick {
		threads, iters, work = 8, 2, 100*time.Microsecond
	}
	tab := stats.NewTable(
		fmt.Sprintf("F7: NPB-like kernels, %d threads (elapsed ms, lower is better)", threads),
		"kernel", "popcorn", "smp", "multikernel", "popcorn/smp")
	for _, k := range []string{workload.KernelEP, workload.KernelIS, workload.KernelCG, workload.KernelMG, workload.KernelFT} {
		spec := workload.ComputeKernelSpec{Kernel: k, Threads: threads, Iters: iters, Work: work}
		var elapsed [3]time.Duration
		for i, ob := range standardOSes(testbed(), popcornKernels) {
			o, closeOS, err := ob.boot()
			if err != nil {
				return nil, err
			}
			res, err := workload.ComputeKernel(o, spec)
			closeOS()
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", ob.name, k, err)
			}
			elapsed[i] = res.Elapsed
		}
		mk, err := bootMK(testbed(), popcornKernels)
		if err != nil {
			return nil, err
		}
		mkRes, err := workload.MKComputeKernel(mk, spec)
		mk.Close()
		if err != nil {
			return nil, fmt.Errorf("multikernel %s: %w", k, err)
		}
		elapsed[2] = mkRes.Elapsed
		ratio := float64(elapsed[0]) / float64(elapsed[1])
		tab.AddRow(k,
			fmt.Sprintf("%.3f", elapsed[0].Seconds()*1000),
			fmt.Sprintf("%.3f", elapsed[1].Seconds()*1000),
			fmt.Sprintf("%.3f", elapsed[2].Seconds()*1000),
			fmt.Sprintf("%.2f", ratio))
	}
	return tab, nil
}

// F8MigrationBenefit sweeps data-set size for the follow-the-data decision:
// the crossover where migrating the thread beats pulling pages.
func F8MigrationBenefit(s Scale) (*stats.Series, error) {
	pageCounts := []int{1, 4, 16, 64, 256}
	if s == Quick {
		pageCounts = []int{1, 16, 128}
	}
	xs := make([]float64, len(pageCounts))
	for i, c := range pageCounts {
		xs[i] = float64(c)
	}
	series := stats.NewSeries("F8: migrate-to-data vs pull-data vs batched prefetch", "data-pages", "elapsed-us", xs...)
	strategies := []struct {
		name string
		spec func(pages int) workload.MigrationBenefitSpec
	}{
		{"stay (demand pull)", func(pages int) workload.MigrationBenefitSpec {
			return workload.MigrationBenefitSpec{Pages: pages, Rounds: 1}
		}},
		{"migrate to data", func(pages int) workload.MigrationBenefitSpec {
			return workload.MigrationBenefitSpec{Pages: pages, Rounds: 1, Migrate: true}
		}},
		{"stay + prefetch batch", func(pages int) workload.MigrationBenefitSpec {
			return workload.MigrationBenefitSpec{Pages: pages, Rounds: 1, Prefetch: true}
		}},
	}
	for _, st := range strategies {
		ys := make([]float64, len(pageCounts))
		for i, pages := range pageCounts {
			o, err := bootPopcorn(testbed(), popcornKernels)
			if err != nil {
				return nil, err
			}
			res, err := workload.MigrationBenefit(o, st.spec(pages))
			o.Close()
			if err != nil {
				return nil, err
			}
			ys[i] = float64(res.Elapsed.Nanoseconds()) / 1000
		}
		if err := series.AddLine(st.name, ys); err != nil {
			return nil, err
		}
	}
	return series, nil
}

// F9KVStore sweeps request locality for a sharded, get-heavy key-value
// store in ONE process — the SSI's hardest macro case. With random routing
// every access is a coherence miss and SMP's hardware coherence wins by an
// order of magnitude; as requests are routed to shard-local clients (as
// real sharded servers do), the replicated kernel's gap closes. The
// prefork webserver example is the complementary case where Popcorn wins
// outright.
func F9KVStore(s Scale) (*stats.Series, error) {
	localities := []int{0, 50, 90, 100}
	ops, clients := 24, 32
	if s == Quick {
		localities = []int{0, 100}
		ops, clients = 8, 16
	}
	xs := make([]float64, len(localities))
	for i, l := range localities {
		xs[i] = float64(l)
	}
	series := stats.NewSeries("F9: sharded KV store vs request locality (32 clients, 10% puts)",
		"locality-pct", "requests/ms", xs...)
	for _, ob := range standardOSes(testbed(), popcornKernels) {
		ys := make([]float64, len(localities))
		for i, loc := range localities {
			o, closeOS, err := ob.boot()
			if err != nil {
				return nil, err
			}
			res, err := workload.KVStore(o, workload.KVStoreSpec{
				Shards: 32, Clients: clients, OpsPerClient: ops,
				PutRatioPct: 10, LocalityPct: loc, KeysPerShard: 2,
				Think: 2 * time.Microsecond, Seed: 3,
			})
			closeOS()
			if err != nil {
				return nil, fmt.Errorf("%s locality=%d: %w", ob.name, loc, err)
			}
			ys[i] = res.Throughput() / 1000
		}
		if err := series.AddLine(ob.name, ys); err != nil {
			return nil, err
		}
	}
	return series, nil
}

// F5SharedFutex is the honest companion to F5: one process-wide lock
// contended from every kernel, where the replicated kernel pays message
// round trips per contended operation.
func F5SharedFutex(s Scale) (*stats.Series, error) {
	iters := 16
	if s == Quick {
		iters = 5
	}
	return sweep(s, "F5b: futex scalability (one shared lock)", "lock-cycles/ms",
		func(o osi.OS, threads int) (workload.Result, error) {
			return workload.FutexChain(o, workload.FutexChainSpec{Threads: threads, Iters: iters, CS: 2 * time.Microsecond, Shared: true})
		}, nil)
}
