package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/stats"
)

// R2OverloadSweep measures what the flow-control plane buys under overload:
// a bulk generator offers 1x, 4x and 10x the link's drain rate while a
// prober issues small RPCs on the same link, with the credit/lane machinery
// off and on. Without flow control the receive queue grows with the offered
// load and the prober's p99 climbs as replies wait behind bulk; with it the
// queue is bounded by the credit limit, the excess is shed at the sender,
// and the prober's tail stays flat.
func R2OverloadSweep(s Scale) (*stats.Table, error) {
	mults := []int{1, 4, 10}
	if s == Quick {
		mults = []int{1, 10}
	}
	t := stats.NewTable("R2: overload sweep - credit flow control off vs on (bulk 16 KiB, probe RPCs sharing the link)",
		"offered load", "flow", "delivered", "shed", "probe p99 (us)", "probes ok", "probes refused", "max queue depth")
	for _, mult := range mults {
		for _, flow := range []bool{false, true} {
			r, err := oneOverloadCell(mult, flow)
			if err != nil {
				return nil, err
			}
			mode := "off"
			if flow {
				mode = "on"
			}
			t.AddRow(fmt.Sprintf("%dx", mult), mode,
				fmt.Sprintf("%d", r.delivered),
				fmt.Sprintf("%d", r.shed),
				fmt.Sprintf("%.1f", float64(r.p99.Nanoseconds())/1000),
				fmt.Sprintf("%d", r.probeOK),
				fmt.Sprintf("%d", r.probeRefused),
				fmt.Sprintf("%d", r.maxDepth))
		}
	}
	return t, nil
}

type overloadCell struct {
	delivered    uint64
	shed         uint64
	p99          time.Duration
	probeOK      uint64
	probeRefused uint64
	maxDepth     uint64
}

// oneOverloadCell runs one generator/prober pair at the given offered-load
// multiplier, with or without the flow plane attached.
func oneOverloadCell(mult int, flow bool) (*overloadCell, error) {
	const (
		bulkSize  = 16384
		bulkCount = 150
		probeGap  = 20 * time.Microsecond
		probeEnd  = 2 * time.Millisecond
	)
	// The remote drain cost of one 16 KiB message sets the saturation point;
	// the generator offers mult messages per drain.
	e := newEngine(sim.WithSeed(1))
	defer e.Close()
	machine, err := hw.NewMachine(testbed(), hw.DefaultCostModel())
	if err != nil {
		return nil, err
	}
	reg := stats.NewRegistry()
	// Kernel 0 on node 0, kernel 1 on node 1: the bulk crosses the slow path.
	fabric, err := msg.NewFabric(e, machine, 2, []int{0, 32}, msg.DefaultConfig(), reg)
	if err != nil {
		return nil, err
	}
	if flow {
		fabric.EnableFlow(msg.FlowConfig{
			CreditsPerLink: 8,
			MaxCreditWait:  500 * time.Microsecond,
		})
	}
	var delivered uint64
	fabric.Endpoint(1).Handle(msg.TypeUser, func(p *sim.Proc, m *msg.Message) *msg.Message {
		if m.Payload == "probe" {
			return &msg.Message{Payload: "ack"}
		}
		delivered++
		return nil
	})
	// One 16 KiB message costs the sender ~15.4 us (128 ring slots) and the
	// receiver ~17.6 us to drain, so a single paced generator saturates the
	// link at 1x and the overload multiplier is expressed as mult concurrent
	// generators: each one's send-cost-plus-gap cycle matches the drain
	// interval, and together they offer mult times what the receiver can
	// absorb.
	for g := 0; g < mult; g++ {
		e.Spawn("r2-gen", func(p *sim.Proc) {
			ep := fabric.Endpoint(0)
			for i := 0; i < bulkCount; i++ {
				_ = ep.TrySend(p, &msg.Message{Type: msg.TypeUser, To: 1, Size: bulkSize})
				p.Sleep(2 * time.Microsecond)
			}
		})
	}
	// Every probe attempt lands in the histogram — successes with their RTT,
	// refusals with the time burned before the refusal — so the flow-on p99
	// compares the same population as flow-off rather than surviving
	// successes only. The ok/refused split is reported alongside.
	probe := reg.Histogram("bench.r2.probe")
	var probeOK, probeRefused uint64
	e.Spawn("r2-probe", func(p *sim.Proc) {
		ep := fabric.Endpoint(0)
		for p.Now().Duration() < probeEnd {
			start := p.Now()
			if _, err := ep.Call(p, &msg.Message{Type: msg.TypeUser, To: 1, Size: 64, Payload: "probe"}); err != nil {
				if !msg.IsBackpressure(err) && !msg.IsDeadPeer(err) {
					panic(err)
				}
				probeRefused++
			} else {
				probeOK++
			}
			probe.Observe(p.Now().Sub(start))
			p.Sleep(probeGap)
		}
	})
	if err := e.Run(); err != nil {
		return nil, err
	}
	return &overloadCell{
		delivered:    delivered,
		shed:         reg.Counter("msg.flow.shed").Value() + reg.Counter("msg.flow.backpressure").Value(),
		p99:          probe.Quantile(0.99),
		probeOK:      probeOK,
		probeRefused: probeRefused,
		maxDepth:     reg.Counter("msg.queue.maxdepth").Value(),
	}, nil
}
