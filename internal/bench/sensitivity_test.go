package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/smp"
	"repro/internal/workload"
)

// TestCrossoverRobustToCostRecalibration backs the claim in EXPERIMENTS.md
// that the headline orderings come from operation *counts*, not from the
// cost model's constants: under substantial recalibrations of the
// hardware model (cheap messages, expensive messages, flat NUMA, slow
// memory), the replicated kernel must still beat SMP on the contended
// thread-creation storm at high concurrency, and must stay within 2x
// uncontended.
func TestCrossoverRobustToCostRecalibration(t *testing.T) {
	perturbations := map[string]func(c *hw.CostModel){
		"baseline": func(c *hw.CostModel) {},
		"2x-messages": func(c *hw.CostModel) {
			// Doubling IPI cost doubles the per-message notify cost, the
			// replicated kernel's main overhead.
			c.IPILocal *= 2
			c.IPIRemote *= 2
		},
		"half-line-transfer": func(c *hw.CostModel) {
			// Halving cache-line bounce costs halves SMP's contention
			// penalty.
			c.LineTransferLocal /= 2
			c.LineTransferRemote /= 2
		},
		"flat-numa": func(c *hw.CostModel) {
			// No remote penalty at all: the kindest possible machine for
			// SMP's cross-socket lock words.
			c.MemAccessRemote = c.MemAccessLocal
			c.LineTransferRemote = c.LineTransferLocal
			c.IPIRemote = c.IPILocal
			c.PageCopyRemote = c.PageCopyLocal
		},
		"slow-threads": func(c *hw.CostModel) {
			c.ThreadSetup *= 3
			c.ContextSwitch *= 2
		},
	}
	topo := hw.Topology{Cores: 64, NUMANodes: 2}
	for name, perturb := range perturbations {
		name, perturb := name, perturb
		t.Run(name, func(t *testing.T) {
			cost := hw.DefaultCostModel()
			perturb(&cost)
			runBomb := func(spawners int) (popcorn, smpT time.Duration) {
				machine, err := hw.NewMachine(topo, cost)
				if err != nil {
					t.Fatal(err)
				}
				cc := kernel.DefaultClusterConfig(machine)
				cc.Kernels = 8
				pop, err := core.Boot(core.Config{Topology: topo, Cost: &cost, Cluster: &cc})
				if err != nil {
					t.Fatal(err)
				}
				popRes, err := workload.ThreadBomb(pop, workload.ThreadBombSpec{Spawners: spawners, Children: 8})
				pop.Close()
				if err != nil {
					t.Fatal(err)
				}
				sm, err := smp.Boot(smp.Config{Topology: topo, Cost: &cost})
				if err != nil {
					t.Fatal(err)
				}
				smpRes, err := workload.ThreadBomb(sm, workload.ThreadBombSpec{Spawners: spawners, Children: 8})
				sm.Close()
				if err != nil {
					t.Fatal(err)
				}
				return popRes.Elapsed, smpRes.Elapsed
			}
			// Contended: popcorn must win.
			popHi, smpHi := runBomb(32)
			if popHi >= smpHi {
				t.Errorf("%s: contended popcorn %v not faster than smp %v", name, popHi, smpHi)
			}
			// Uncontended: popcorn must stay within 2x.
			popLo, smpLo := runBomb(1)
			if popLo > 2*smpLo {
				t.Errorf("%s: uncontended popcorn %v more than 2x smp %v", name, popLo, smpLo)
			}
		})
	}
}
