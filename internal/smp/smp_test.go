package smp

import (
	"errors"
	"testing"
	"time"

	"repro/internal/futex"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/osi"
	"repro/internal/sim"
)

func boot(t *testing.T) *OS {
	t.Helper()
	os, err := Boot(Config{Topology: hw.Topology{Cores: 8, NUMANodes: 2}, FramesPerNode: 4096})
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	t.Cleanup(os.Close)
	return os
}

func TestBoot(t *testing.T) {
	os := boot(t)
	if os.Name() != "smp" || os.Kernels() != 1 {
		t.Fatalf("Name=%q Kernels=%d", os.Name(), os.Kernels())
	}
}

func TestMapStoreLoad(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	e.Spawn("driver", func(p *sim.Proc) {
		pr, err := os.StartProcess(p)
		if err != nil {
			t.Errorf("StartProcess: %v", err)
			return
		}
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			addr, err := th.Mmap(2*hw.PageSize, mem.ProtRead|mem.ProtWrite)
			if err != nil {
				t.Errorf("Mmap: %v", err)
				return
			}
			if err := th.Store(addr, 42); err != nil {
				t.Errorf("Store: %v", err)
			}
			if v, _ := th.Load(addr); v != 42 {
				t.Errorf("Load = %d", v)
			}
			if _, err := th.Load(0xdead000); !errors.Is(err, ErrSegv) {
				t.Errorf("unmapped Load = %v, want segv", err)
			}
		})
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestThreadsShareMemoryCoherently(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	e.Spawn("driver", func(p *sim.Proc) {
		pr, _ := os.StartProcess(p)
		var addr mem.Addr
		ready := sim.NewWaitGroup()
		ready.Add(1)
		done := sim.NewWaitGroup()
		done.Add(4)
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			addr, _ = th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
			ready.Done()
			done.Wait(th.Proc())
			if v, _ := th.Load(addr); v != 4*25 {
				t.Errorf("counter = %d, want 100", v)
			}
		})
		for i := 0; i < 4; i++ {
			_ = pr.Spawn(p, 0, func(th osi.Thread) {
				ready.Wait(th.Proc())
				for j := 0; j < 25; j++ {
					if _, err := th.FetchAdd(addr, 1); err != nil {
						t.Errorf("FetchAdd: %v", err)
						return
					}
				}
				done.Done()
			})
		}
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMunmapThenAccessSegfaults(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	e.Spawn("driver", func(p *sim.Proc) {
		pr, _ := os.StartProcess(p)
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			addr, _ := th.Mmap(2*hw.PageSize, mem.ProtRead|mem.ProtWrite)
			_ = th.Store(addr, 1)
			_ = th.Store(addr+hw.PageSize, 2)
			if err := th.Munmap(addr, hw.PageSize); err != nil {
				t.Errorf("Munmap: %v", err)
			}
			if _, err := th.Load(addr); !errors.Is(err, ErrSegv) {
				t.Errorf("Load after munmap = %v", err)
			}
			if v, err := th.Load(addr + hw.PageSize); err != nil || v != 2 {
				t.Errorf("surviving page = %d, %v", v, err)
			}
		})
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMprotectEnforced(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	e.Spawn("driver", func(p *sim.Proc) {
		pr, _ := os.StartProcess(p)
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			addr, _ := th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
			_ = th.Store(addr, 9)
			if err := th.Mprotect(addr, hw.PageSize, mem.ProtRead); err != nil {
				t.Errorf("Mprotect: %v", err)
			}
			if err := th.Store(addr, 10); !errors.Is(err, ErrAccess) {
				t.Errorf("Store on RO = %v", err)
			}
			if err := th.Mprotect(addr, hw.PageSize, mem.ProtRead|mem.ProtWrite); err != nil {
				t.Errorf("Mprotect back: %v", err)
			}
			if err := th.Store(addr, 10); err != nil {
				t.Errorf("Store after re-enable: %v", err)
			}
		})
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFutexWaitWake(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	var wokenAt, wakeAt sim.Time
	e.Spawn("driver", func(p *sim.Proc) {
		pr, _ := os.StartProcess(p)
		var addr mem.Addr
		ready := sim.NewWaitGroup()
		ready.Add(1)
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			addr, _ = th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
			ready.Done()
			if err := th.FutexWait(addr, 0); err != nil {
				t.Errorf("FutexWait: %v", err)
			}
			wokenAt = th.Proc().Now()
		})
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			ready.Wait(th.Proc())
			th.Compute(time.Millisecond)
			_ = th.Store(addr, 1)
			wakeAt = th.Proc().Now()
			if n, err := th.FutexWake(addr, 1); err != nil || n != 1 {
				t.Errorf("FutexWake = %d, %v", n, err)
			}
		})
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokenAt < wakeAt {
		t.Fatalf("woken at %v before wake at %v", wokenAt, wakeAt)
	}
}

func TestFutexEagain(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	e.Spawn("driver", func(p *sim.Proc) {
		pr, _ := os.StartProcess(p)
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			addr, _ := th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
			_ = th.Store(addr, 5)
			if err := th.FutexWait(addr, 0); !errors.Is(err, futex.ErrWouldBlock) {
				t.Errorf("FutexWait on changed value = %v", err)
			}
		})
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFutexIsolatedBetweenProcesses(t *testing.T) {
	// Two processes use the same virtual address: a wake in one must not
	// wake the other's waiter even though they hash to the same bucket.
	os := boot(t)
	e := os.Engine()
	crossWake := false
	e.Spawn("driver", func(p *sim.Proc) {
		prA, _ := os.StartProcess(p)
		prB, _ := os.StartProcess(p)
		var addrA, addrB mem.Addr
		ready := sim.NewWaitGroup()
		ready.Add(2)
		_ = prA.Spawn(p, 0, func(th osi.Thread) {
			addrA, _ = th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
			ready.Done()
			if err := th.FutexWait(addrA, 0); err == nil {
				crossWake = true // must only happen via A's own wake below
			}
		})
		_ = prB.Spawn(p, 0, func(th osi.Thread) {
			addrB, _ = th.Mmap(hw.PageSize, mem.ProtRead|mem.ProtWrite)
			ready.Done()
			th.Proc().Sleep(time.Millisecond)
			// B wakes its own address — which equals A's numerically.
			if addrA != addrB {
				t.Errorf("test setup: addresses differ (%#x vs %#x)", uint64(addrA), uint64(addrB))
			}
			if n, _ := th.FutexWake(addrB, 10); n != 0 {
				t.Errorf("B woke %d waiters of A", n)
			}
		})
		prB.Wait(p)
		// Now wake A properly so the test can finish.
		_ = prA.Spawn(p, 0, func(th osi.Thread) {
			if _, err := th.FutexWake(addrA, 1); err != nil {
				t.Errorf("A wake: %v", err)
			}
		})
		prA.Wait(p)
		_ = prA.Close(p)
		_ = prB.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if crossWake {
		// A woke: fine only if it was A's own wake; the error cases above
		// would have flagged B's cross-wake already.
		_ = crossWake
	}
}

func TestMigrateUnsupported(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	e.Spawn("driver", func(p *sim.Proc) {
		pr, _ := os.StartProcess(p)
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			if err := th.Migrate(1); !errors.Is(err, osi.ErrUnsupported) {
				t.Errorf("Migrate(1) = %v, want ErrUnsupported", err)
			}
			if err := th.Migrate(0); err != nil {
				t.Errorf("Migrate(0) = %v, want nil no-op", err)
			}
		})
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSpawnRejectsNonZeroKernel(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	e.Spawn("driver", func(p *sim.Proc) {
		pr, _ := os.StartProcess(p)
		if err := pr.Spawn(p, 3, func(th osi.Thread) {}); err == nil {
			t.Error("Spawn on kernel 3 accepted by single-kernel OS")
		}
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCloseFreesFrames(t *testing.T) {
	os := boot(t)
	e := os.Engine()
	e.Spawn("driver", func(p *sim.Proc) {
		pr, _ := os.StartProcess(p)
		_ = pr.Spawn(p, 0, func(th osi.Thread) {
			addr, _ := th.Mmap(8*hw.PageSize, mem.ProtRead|mem.ProtWrite)
			for i := 0; i < 8; i++ {
				_ = th.Store(addr+mem.Addr(i*hw.PageSize), 1)
			}
		})
		pr.Wait(p)
		_ = pr.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for n, z := range os.zones {
		if z.Allocator().InUse() != 0 {
			t.Errorf("zone %d leaked %d frames", n, z.Allocator().InUse())
		}
	}
}

func TestContentionGrowsLockWait(t *testing.T) {
	// More concurrently cloning threads must produce more tasklist
	// contention — the mechanism behind F1.
	cloneStorm := func(threads int) time.Duration {
		os := boot(t)
		e := os.Engine()
		var wait time.Duration
		e.Spawn("driver", func(p *sim.Proc) {
			pr, _ := os.StartProcess(p)
			done := sim.NewWaitGroup()
			done.Add(threads)
			for i := 0; i < threads; i++ {
				_ = pr.Spawn(p, 0, func(th osi.Thread) {
					for j := 0; j < 5; j++ {
						if err := th.Spawn(0, func(osi.Thread) {}); err != nil {
							t.Errorf("nested Spawn: %v", err)
							return
						}
					}
					done.Done()
				})
			}
			done.Wait(p)
			pr.Wait(p)
			_ = pr.Close(p)
			wait = os.tasklist.Stats().TotalWait
		})
		if err := e.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return wait
	}
	low, high := cloneStorm(1), cloneStorm(6)
	if high <= low {
		t.Fatalf("tasklist wait with 6 cloners (%v) not above 1 cloner (%v)", high, low)
	}
}
