// Package smp implements the SMP-Linux-like baseline: one symmetric kernel
// over every core, built on shared data structures protected by
// machine-global locks. It provides exactly the osi interface the
// replicated kernel provides, so identical workloads run on both. The
// contention points modelled are the ones the paper blames for SMP's poor
// many-core scaling:
//
//   - a global task-list lock and PID allocator taken on every clone/exit,
//     whose lock words bounce between sockets;
//   - a per-process mmap semaphore (reader/writer) taken on every fault
//     (shared) and every mmap/munmap/mprotect (exclusive);
//   - per-NUMA-node zone locks on the page allocator shared by all cores
//     of the node;
//   - a machine-global futex hash table whose bucket locks bounce between
//     sockets.
//
// Uncontended, these cost almost nothing — SMP matches or beats the
// replicated kernel at low core counts because it pays no message-passing
// overhead. The crossover as core counts grow is the paper's headline.
package smp

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/osi"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

// futexBuckets is the size of the global futex hash table (Linux sizes it
// by core count; 256 matches the era's defaults for this machine class).
const futexBuckets = 256

// mapBase matches the replicated kernel's anonymous-mapping base so
// workloads see identical address ranges.
const mapBase mem.Addr = 1 << 32

// Config configures an SMP boot.
type Config struct {
	Topology hw.Topology
	Cost     *hw.CostModel
	Seed     int64
	// FramesPerNode sizes each NUMA node's memory.
	FramesPerNode int
}

// OS is the booted SMP system.
type OS struct {
	e       sim.Engine
	machine *hw.Machine
	//popcornvet:allow kernlocal the SMP baseline is a single kernel; there is no cross-kernel sharing to shard
	metrics *stats.Registry
	sched   *sched.Scheduler
	// Global shared kernel state.
	tasklist *sim.Mutex
	pidLock  *sim.Mutex
	zones    []*kernel.LockedFrames
	futexes  [futexBuckets]*futexBucket
	nextPID  int64
	rrNode   int
}

type futexBucket struct {
	mu      *sim.Mutex
	waiters map[mem.Addr][]*smpWaiter // keyed by (process-unique) address
}

type smpWaiter struct {
	proc  *sim.Proc
	mm    *mmStruct
	woken bool
}

var _ osi.OS = (*OS)(nil)

// Boot brings up the SMP system.
func Boot(cfg Config) (*OS, error) {
	topo := cfg.Topology
	if topo.Cores == 0 {
		topo = hw.Topology{Cores: 64, NUMANodes: 2}
	}
	cost := hw.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	machine, err := hw.NewMachine(topo, cost)
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	e := sim.NewEngine(sim.WithSeed(seed))
	os, err := BootOn(e, machine, cfg.FramesPerNode)
	if err != nil {
		e.Close()
		return nil, err
	}
	return os, nil
}

// BootOn builds the SMP system on an existing engine and machine.
func BootOn(e sim.Engine, machine *hw.Machine, framesPerNode int) (*OS, error) {
	if framesPerNode <= 0 {
		framesPerNode = 1 << 16
	}
	metrics := stats.NewRegistry()
	allCores := make([]int, machine.Topology.Cores)
	for i := range allCores {
		allCores[i] = i
	}
	sch, err := sched.New(e, machine, allCores, metrics)
	if err != nil {
		return nil, err
	}
	os := &OS{
		e:        e,
		machine:  machine,
		metrics:  metrics,
		sched:    sch,
		tasklist: sim.NewMutex(e),
		pidLock:  sim.NewMutex(e),
	}
	for n := 0; n < machine.Topology.NUMANodes; n++ {
		alloc, err := mem.NewFrameAllocator(n, mem.FrameID(n)<<24, framesPerNode)
		if err != nil {
			return nil, err
		}
		os.zones = append(os.zones, kernel.NewLockedFrames(e, machine, alloc, false, machine.Topology.CoresPerNode()))
	}
	for i := range os.futexes {
		os.futexes[i] = &futexBucket{mu: sim.NewMutex(e).SetLabel("smp.futex.bucket"), waiters: make(map[mem.Addr][]*smpWaiter)}
	}
	return os, nil
}

// Name implements osi.OS.
func (o *OS) Name() string { return "smp" }

// Engine implements osi.OS.
func (o *OS) Engine() sim.Engine { return o.e }

// Machine implements osi.OS.
func (o *OS) Machine() *hw.Machine { return o.machine }

// Kernels implements osi.OS: SMP is a single kernel.
func (o *OS) Kernels() int { return 1 }

// Metrics implements osi.OS.
func (o *OS) Metrics() *stats.Registry { return o.metrics }

// Close shuts the simulation down.
func (o *OS) Close() { o.e.Close() }

// crossNode reports whether global kernel locks bounce between sockets on
// this machine (true whenever there is more than one NUMA node).
func (o *OS) crossNode() bool { return o.machine.Topology.NUMANodes > 1 }

// capSharers bounds a lock's cache-line bounce term by the machine's core
// count: queued software waiters beyond that are parked, not spinning.
func (o *OS) capSharers(waiters int) int {
	if max := o.machine.Topology.Cores - 1; waiters > max {
		return max
	}
	return waiters
}

// allocPID takes the global PID lock and returns a fresh PID.
func (o *OS) allocPID(p *sim.Proc) int64 {
	o.pidLock.Lock(p)
	p.Sleep(o.machine.LineBounce(o.capSharers(o.pidLock.Waiters()), o.crossNode()))
	o.nextPID++
	pid := o.nextPID
	o.pidLock.Unlock(p)
	return pid
}

// mmStruct is a process's memory descriptor: one VMA tree and page table
// shared by all its threads, guarded by mmap_sem.
type mmStruct struct {
	os      *OS
	mmapSem *sim.RWMutex
	vmas    vm.AreaSet
	pt      *mem.PageTable
	values  map[mem.VPN]int64
	// lastWriter tracks the core that last wrote each page, to charge the
	// hardware cache-line transfer that cross-core sharing costs.
	lastWriter map[mem.VPN]int
	nextMap    mem.Addr
	// activeThreads approximates mm_cpumask: TLB shootdowns hit only as
	// many cores as the process has live threads.
	activeThreads int
	// brk is the current program break.
	brk mem.Addr
}

// heapBase mirrors the replicated kernel's heap placement.
const heapBase mem.Addr = 1 << 28

// shootdownRemote returns how many remote cores a layout change must IPI
// and whether they span NUMA nodes.
func (mm *mmStruct) shootdownRemote() (int, bool) {
	cores := mm.os.machine.Topology.Cores
	active := mm.activeThreads
	if active > cores {
		active = cores
	}
	remote := active - 1
	if remote < 0 {
		remote = 0
	}
	cross := mm.os.crossNode() && active > mm.os.machine.Topology.CoresPerNode()
	return remote, cross
}

// Process is an SMP process.
type Process struct {
	os   *OS
	pid  int64
	mm   *mmStruct
	wg   *sim.WaitGroup
	node int // preferred NUMA node for this process's allocations
	// signals is the process's per-thread pending-signal table.
	signals map[int64][]int
	// sigWaiters holds threads blocked in SigWait.
	sigWaiters map[int64]*sim.Proc
}

var _ osi.Process = (*Process)(nil)

// StartProcess implements osi.OS.
func (o *OS) StartProcess(p *sim.Proc) (osi.Process, error) {
	p.Sleep(o.machine.Cost.SyscallTrap)
	pid := o.allocPID(p)
	o.tasklist.Lock(p)
	p.Sleep(o.machine.LineBounce(o.capSharers(o.tasklist.Waiters()), o.crossNode()) + o.machine.Cost.ThreadSetup)
	o.tasklist.Unlock(p)
	node := o.rrNode % o.machine.Topology.NUMANodes
	o.rrNode++
	return &Process{
		os:  o,
		pid: pid,
		mm: &mmStruct{
			os:         o,
			mmapSem:    sim.NewRWMutex(o.e),
			pt:         mem.NewPageTable(),
			values:     make(map[mem.VPN]int64),
			lastWriter: make(map[mem.VPN]int),
			nextMap:    mapBase,
			brk:        heapBase,
		},
		wg:         sim.NewWaitGroup(),
		node:       node,
		signals:    make(map[int64][]int),
		sigWaiters: make(map[int64]*sim.Proc),
	}, nil
}

// Spawn implements osi.Process: clone() under the global locks.
func (pr *Process) Spawn(p *sim.Proc, kernelHint int, fn osi.ThreadFunc) error {
	if kernelHint > 0 {
		return fmt.Errorf("smp: kernel %d does not exist (single kernel); use 0 or AnyKernel", kernelHint)
	}
	o := pr.os
	p.Sleep(o.machine.Cost.SyscallTrap)
	tid := o.allocPID(p)
	o.tasklist.Lock(p)
	p.Sleep(o.machine.LineBounce(o.capSharers(o.tasklist.Waiters()), o.crossNode()) + o.machine.Cost.ThreadSetup)
	o.tasklist.Unlock(p)
	o.metrics.Counter("smp.clone").Inc()
	pr.mm.activeThreads++
	pr.wg.Add(1)
	o.e.Spawn(fmt.Sprintf("smp-thread-%d", tid), func(tp *sim.Proc) {
		defer pr.wg.Done()
		th := &Thread{pr: pr, p: tp, tid: tid}
		th.core = o.sched.Acquire(tp)
		fn(th)
		th.exit()
	})
	return nil
}

// Wait implements osi.Process.
func (pr *Process) Wait(p *sim.Proc) { pr.wg.Wait(p) }

// Close implements osi.Process. SMP teardown frees the process's frames.
func (pr *Process) Close(p *sim.Proc) error {
	for v, pte := range pr.mm.pt.All() {
		if pte.Frame != mem.NoFrame {
			pr.os.zones[pte.HomeNode].FreeFrame(p, pte.Frame)
		}
		pr.mm.pt.Clear(v)
	}
	return nil
}
