package smp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/futex"
	"repro/internal/hw"
	"repro/internal/mem"
	"repro/internal/osi"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Errors mirroring the replicated kernel's so workloads are portable.
var (
	ErrSegv   = vm.ErrSegv
	ErrAccess = vm.ErrAccess
)

// Thread is a running SMP thread.
type Thread struct {
	pr   *Process
	p    *sim.Proc
	tid  int64
	core int
}

var _ osi.Thread = (*Thread)(nil)

// Proc implements osi.Thread.
func (t *Thread) Proc() *sim.Proc { return t.p }

// ID implements osi.Thread.
func (t *Thread) ID() int64 { return t.tid }

// KernelID implements osi.Thread: SMP has a single kernel 0.
func (t *Thread) KernelID() int { return 0 }

// Core implements osi.Thread.
func (t *Thread) Core() int { return t.core }

// Compute implements osi.Thread.
func (t *Thread) Compute(d time.Duration) {
	t.core = t.pr.os.sched.Run(t.p, d)
}

// Mmap implements osi.Thread: mmap_sem exclusive plus the VMA work.
func (t *Thread) Mmap(length uint64, prot mem.Prot) (mem.Addr, error) {
	if length == 0 {
		return 0, fmt.Errorf("%w: zero-length map", vm.ErrBadRange)
	}
	o := t.pr.os
	mm := t.pr.mm
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	o.metrics.Counter("smp.mmap").Inc()
	start := t.p.Now()
	mm.mmapSem.Lock(t.p)
	t.p.Sleep(o.machine.LineBounce(o.capSharers(mm.mmapSem.Waiters()), o.crossNode()) + o.machine.Cost.VMAOp)
	pages := int((length + hw.PageSize - 1) / hw.PageSize)
	addr := mm.nextMap
	mm.nextMap += mem.Addr(pages * hw.PageSize)
	lo := mem.PageOf(addr)
	err := mm.vmas.Insert(vm.VMA{Lo: lo, Hi: lo + mem.VPN(pages), Prot: prot})
	mm.mmapSem.Unlock(t.p)
	o.metrics.Histogram("smp.mmap.latency").Observe(t.p.Now().Sub(start))
	if err != nil {
		return 0, err
	}
	return addr, nil
}

// Sbrk implements osi.Thread: brk(2) under mmap_sem.
func (t *Thread) Sbrk(delta int64) (mem.Addr, error) {
	o := t.pr.os
	mm := t.pr.mm
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	mm.mmapSem.Lock(t.p)
	defer mm.mmapSem.Unlock(t.p)
	t.p.Sleep(o.machine.LineBounce(o.capSharers(mm.mmapSem.Waiters()), o.crossNode()) + o.machine.Cost.VMAOp)
	old := mm.brk
	if delta == 0 {
		return old, nil
	}
	pages := (delta + hw.PageSize - 1) / hw.PageSize
	if delta < 0 {
		pages = -((-delta + hw.PageSize - 1) / hw.PageSize)
	}
	newBrk := old + mem.Addr(pages*hw.PageSize)
	if newBrk < heapBase {
		return 0, fmt.Errorf("%w: brk below heap base", vm.ErrBadRange)
	}
	if delta > 0 {
		if err := mm.vmas.Insert(vm.VMA{Lo: mem.PageOf(old), Hi: mem.PageOf(newBrk), Prot: mem.ProtRead | mem.ProtWrite}); err != nil {
			return 0, err
		}
		mm.brk = newBrk
		return old, nil
	}
	lo, hi := mem.PageOf(newBrk), mem.PageOf(old)
	freed := 0
	for _, r := range mm.vmas.Remove(lo, hi) {
		for _, pte := range mm.pt.ClearRange(r.Lo, r.Hi) {
			if pte.Frame != mem.NoFrame {
				o.zones[pte.HomeNode].FreeFrame(t.p, pte.Frame)
				freed++
			}
		}
		for v := r.Lo; v < r.Hi; v++ {
			delete(mm.values, v)
			delete(mm.lastWriter, v)
		}
	}
	mm.brk = newBrk
	if freed > 0 {
		remote, cross := mm.shootdownRemote()
		t.p.Sleep(o.machine.TLBShootdown(remote, cross))
	}
	return old, nil
}

// Munmap implements osi.Thread: mmap_sem exclusive, PTE teardown, zone
// frees and a machine-wide TLB shootdown.
func (t *Thread) Munmap(addr mem.Addr, length uint64) error {
	if err := checkRange(addr, length); err != nil {
		return err
	}
	o := t.pr.os
	mm := t.pr.mm
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	o.metrics.Counter("smp.munmap").Inc()
	mm.mmapSem.Lock(t.p)
	t.p.Sleep(o.machine.LineBounce(o.capSharers(mm.mmapSem.Waiters()), o.crossNode()) + o.machine.Cost.VMAOp)
	lo := mem.PageOf(addr)
	hi := lo + mem.VPN((length+hw.PageSize-1)/hw.PageSize)
	removed := mm.vmas.Remove(lo, hi)
	freed := 0
	for _, r := range removed {
		for _, pte := range mm.pt.ClearRange(r.Lo, r.Hi) {
			if pte.Frame != mem.NoFrame {
				o.zones[pte.HomeNode].FreeFrame(t.p, pte.Frame)
				freed++
			}
		}
		for v := r.Lo; v < r.Hi; v++ {
			delete(mm.values, v)
			delete(mm.lastWriter, v)
		}
	}
	if freed > 0 {
		// Shoot down the cores in the process's mm_cpumask.
		remote, cross := mm.shootdownRemote()
		t.p.Sleep(o.machine.TLBShootdown(remote, cross))
	}
	mm.mmapSem.Unlock(t.p)
	return nil
}

// Mprotect implements osi.Thread.
func (t *Thread) Mprotect(addr mem.Addr, length uint64, prot mem.Prot) error {
	if err := checkRange(addr, length); err != nil {
		return err
	}
	o := t.pr.os
	mm := t.pr.mm
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	o.metrics.Counter("smp.mprotect").Inc()
	mm.mmapSem.Lock(t.p)
	defer mm.mmapSem.Unlock(t.p)
	t.p.Sleep(o.machine.LineBounce(o.capSharers(mm.mmapSem.Waiters()), o.crossNode()) + o.machine.Cost.VMAOp)
	lo := mem.PageOf(addr)
	hi := lo + mem.VPN((length+hw.PageSize-1)/hw.PageSize)
	if !mm.vmas.Covered(lo, hi) {
		return fmt.Errorf("%w: mprotect range not fully mapped", vm.ErrBadRange)
	}
	//popcornvet:allow locksend vmas.Protect is the in-memory AreaSet update, not the fabric-backed vm.Space.Protect the name-based analysis confuses it with; nothing here leaves the kernel
	changed := mm.vmas.Protect(lo, hi, prot)
	if len(changed) == 0 {
		return nil
	}
	touched := 0
	for v := lo; v < hi; v++ {
		if pte, ok := mm.pt.Lookup(v); ok {
			np := pte.Prot & prot
			if np != pte.Prot {
				pte.Prot = np
				mm.pt.Set(v, pte)
				touched++
			}
		}
	}
	if touched > 0 {
		remote, cross := mm.shootdownRemote()
		t.p.Sleep(o.machine.TLBShootdown(remote, cross))
	}
	return nil
}

func checkRange(addr mem.Addr, length uint64) error {
	if length == 0 {
		return fmt.Errorf("%w: zero length", vm.ErrBadRange)
	}
	if uint64(addr)%hw.PageSize != 0 {
		return fmt.Errorf("%w: address %#x not page-aligned", vm.ErrBadRange, uint64(addr))
	}
	return nil
}

// access is the SMP memory path: hardware-coherent, so no protocol — just
// the fault path (mmap_sem shared + zone alloc) on first touch and
// cache-line transfer costs for cross-core sharing.
func (t *Thread) access(addr mem.Addr, op accessOp) (int64, error) {
	o := t.pr.os
	mm := t.pr.mm
	vpn := mem.PageOf(addr)
	write := op.write || op.rmw != nil
	pte, ok := mm.pt.Lookup(vpn)
	if !ok || !pte.Prot.Readable() || (write && !pte.Prot.Writable()) {
		// Page fault (or protection check through the VMA).
		t.p.Sleep(o.machine.Cost.PageFaultTrap)
		mm.mmapSem.RLock(t.p)
		area, found := mm.vmas.Find(vpn)
		if !found {
			mm.mmapSem.RUnlock(t.p)
			return 0, fmt.Errorf("%w: page %#x", ErrSegv, uint64(vpn.Base()))
		}
		if write && !area.Prot.Writable() {
			mm.mmapSem.RUnlock(t.p)
			return 0, fmt.Errorf("%w: write to %v page", ErrAccess, area.Prot)
		}
		if !area.Prot.Readable() {
			mm.mmapSem.RUnlock(t.p)
			return 0, fmt.Errorf("%w: %v page", ErrAccess, area.Prot)
		}
		if !ok {
			frame, home, err := o.zones[o.machine.Topology.NodeOf(t.core)].AllocFrame(t.p)
			if err != nil {
				mm.mmapSem.RUnlock(t.p)
				return 0, fmt.Errorf("%w: %v", vm.ErrNoSpace, err)
			}
			t.p.Sleep(o.machine.Cost.PageCopyLocal + o.machine.Cost.PTESet) // zero-fill
			pte = mem.PTE{Frame: frame, Prot: area.Prot, HomeNode: home}
			mm.pt.Set(vpn, pte)
			o.metrics.Counter("smp.fault").Inc()
		} else {
			// Present but insufficient: refresh protections from the VMA.
			pte.Prot = area.Prot
			mm.pt.Set(vpn, pte)
			t.p.Sleep(o.machine.Cost.PTESet)
		}
		mm.mmapSem.RUnlock(t.p)
	}
	// Hardware coherence: pulling a line another core dirtied costs a
	// transfer; the directory is the cache hierarchy, not software.
	if last, wrote := mm.lastWriter[vpn]; wrote && last != t.core {
		t.p.Sleep(o.machine.LineBounce(1, !o.machine.Topology.SameNode(last, t.core)))
	}
	var result int64
	switch {
	case op.rmw != nil:
		old := mm.values[vpn]
		if next, doWrite := op.rmw(old); doWrite {
			mm.values[vpn] = next
		}
		result = old
		mm.lastWriter[vpn] = t.core
	case op.write:
		mm.values[vpn] = op.val
		result = op.val
		mm.lastWriter[vpn] = t.core
	default:
		result = mm.values[vpn]
	}
	t.p.Sleep(o.machine.MemAccess(t.core, pte.HomeNode))
	return result, nil
}

type accessOp struct {
	write bool
	val   int64
	rmw   func(old int64) (int64, bool)
}

// Load implements osi.Thread.
func (t *Thread) Load(addr mem.Addr) (int64, error) {
	return t.access(addr, accessOp{})
}

// Store implements osi.Thread.
func (t *Thread) Store(addr mem.Addr, val int64) error {
	_, err := t.access(addr, accessOp{write: true, val: val})
	return err
}

// CompareAndSwap implements osi.Thread.
func (t *Thread) CompareAndSwap(addr mem.Addr, old, new int64) (bool, error) {
	swapped := false
	_, err := t.access(addr, accessOp{rmw: func(cur int64) (int64, bool) {
		if cur == old {
			swapped = true
			return new, true
		}
		return 0, false
	}})
	return swapped, err
}

// FetchAdd implements osi.Thread.
func (t *Thread) FetchAdd(addr mem.Addr, delta int64) (int64, error) {
	return t.access(addr, accessOp{rmw: func(cur int64) (int64, bool) { return cur + delta, true }})
}

// FutexWait implements osi.Thread: the global hash bucket serialises the
// value check and the enqueue, bouncing its lock word across sockets.
func (t *Thread) FutexWait(addr mem.Addr, expect int64) error {
	o := t.pr.os
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	b := o.futexes[int(addr/hw.CacheLineSize)%futexBuckets]
	b.mu.Lock(t.p)
	t.p.Sleep(o.machine.LineBounce(o.capSharers(b.mu.Waiters()), o.crossNode()))
	val, err := t.access(addr, accessOp{})
	if err != nil {
		b.mu.Unlock(t.p)
		return err
	}
	if val != expect {
		b.mu.Unlock(t.p)
		o.metrics.Counter("smp.futex.eagain").Inc()
		return futex.ErrWouldBlock
	}
	w := &smpWaiter{proc: t.p, mm: t.pr.mm}
	b.waiters[addr] = append(b.waiters[addr], w)
	b.mu.Unlock(t.p)
	o.metrics.Counter("smp.futex.wait").Inc()
	o.sched.Release(t.p)
	if !w.woken {
		t.p.Suspend()
	}
	t.core = o.sched.Acquire(t.p)
	if !w.woken {
		return errors.New("smp: futex waiter woken without wake")
	}
	return nil
}

// FutexWake implements osi.Thread.
func (t *Thread) FutexWake(addr mem.Addr, count int) (int, error) {
	o := t.pr.os
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	if count <= 0 {
		return 0, nil
	}
	b := o.futexes[int(addr/hw.CacheLineSize)%futexBuckets]
	b.mu.Lock(t.p)
	t.p.Sleep(o.machine.LineBounce(o.capSharers(b.mu.Waiters()), o.crossNode()))
	q := b.waiters[addr]
	// Wake only waiters of this process (keys are per-mm in Linux; the
	// bucket is shared, the queue entries carry the mm).
	woken := 0
	remaining := q[:0]
	for _, w := range q {
		if woken < count && w.mm == t.pr.mm {
			w.woken = true
			w.proc.Resume()
			woken++
		} else {
			remaining = append(remaining, w)
		}
	}
	if len(remaining) == 0 {
		delete(b.waiters, addr)
	} else {
		b.waiters[addr] = append([]*smpWaiter(nil), remaining...)
	}
	b.mu.Unlock(t.p)
	o.metrics.Counter("smp.futex.wake").Inc()
	return woken, nil
}

// FutexRequeue implements osi.Thread: both buckets lock in address order,
// the value check and the queue moves are atomic under them.
func (t *Thread) FutexRequeue(from, to mem.Addr, expect int64, wake, requeue int) (int, int, error) {
	o := t.pr.os
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	bFrom := o.futexes[int(from/hw.CacheLineSize)%futexBuckets]
	bTo := o.futexes[int(to/hw.CacheLineSize)%futexBuckets]
	first, second := bFrom, bTo
	if to < from {
		first, second = bTo, bFrom
	}
	first.mu.Lock(t.p)
	if second != first {
		second.mu.Lock(t.p) //popcornvet:allow lockorder the two buckets are always taken in address order (first/second sorted above), so concurrent requeues cannot close a wait cycle
	}
	defer func() {
		if second != first {
			second.mu.Unlock(t.p)
		}
		first.mu.Unlock(t.p)
	}()
	t.p.Sleep(o.machine.LineBounce(o.capSharers(first.mu.Waiters()+second.mu.Waiters()), o.crossNode()))
	val, err := t.access(from, accessOp{})
	if err != nil {
		return 0, 0, err
	}
	if val != expect {
		o.metrics.Counter("smp.futex.eagain").Inc()
		return 0, 0, futex.ErrWouldBlock
	}
	q := bFrom.waiters[from]
	woken, requeued := 0, 0
	var remaining []*smpWaiter
	for _, w := range q {
		switch {
		case w.mm != t.pr.mm:
			remaining = append(remaining, w)
		case woken < wake:
			w.woken = true
			w.proc.Resume()
			woken++
		case requeued < requeue:
			bTo.waiters[to] = append(bTo.waiters[to], w)
			requeued++
		default:
			remaining = append(remaining, w)
		}
	}
	if len(remaining) == 0 {
		delete(bFrom.waiters, from)
	} else {
		bFrom.waiters[from] = remaining
	}
	return woken, requeued, nil
}

// Spawn implements osi.Thread.
func (t *Thread) Spawn(kernelHint int, fn osi.ThreadFunc) error {
	return t.pr.Spawn(t.p, kernelHint, fn)
}

// Migrate implements osi.Thread: SMP has one kernel, so kernel-directed
// migration does not exist.
func (t *Thread) Migrate(kernel int) error {
	if kernel == 0 || kernel == osi.AnyKernel {
		return nil
	}
	return osi.ErrUnsupported
}

// Kill implements osi.Thread: within one kernel, delivery is a queue
// append under the (global) task-list lock.
func (t *Thread) Kill(tid int64, sig int) error {
	o := t.pr.os
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	o.tasklist.Lock(t.p)
	t.p.Sleep(o.machine.LineBounce(o.capSharers(o.tasklist.Waiters()), o.crossNode()))
	t.pr.signals[tid] = append(t.pr.signals[tid], sig)
	w := t.pr.sigWaiters[tid]
	delete(t.pr.sigWaiters, tid)
	o.tasklist.Unlock(t.p)
	if w != nil {
		w.Resume()
	}
	return nil
}

// SigWait implements osi.Thread.
func (t *Thread) SigWait() ([]int, error) {
	o := t.pr.os
	t.p.Sleep(o.machine.Cost.SyscallTrap)
	if len(t.pr.signals[t.tid]) == 0 {
		if _, busy := t.pr.sigWaiters[t.tid]; busy {
			return nil, errors.New("smp: thread already has a signal waiter")
		}
		t.pr.sigWaiters[t.tid] = t.p
		o.sched.Release(t.p)
		t.p.Suspend()
		t.core = o.sched.Acquire(t.p)
	}
	sigs := t.pr.signals[t.tid]
	delete(t.pr.signals, t.tid)
	return sigs, nil
}

// exit runs thread teardown under the global locks.
func (t *Thread) exit() {
	o := t.pr.os
	t.pr.mm.activeThreads--
	o.tasklist.Lock(t.p)
	t.p.Sleep(o.machine.LineBounce(o.capSharers(o.tasklist.Waiters()), o.crossNode()))
	o.tasklist.Unlock(t.p)
	o.metrics.Counter("smp.exit").Inc()
	o.sched.Release(t.p)
}
