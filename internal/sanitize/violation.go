package sanitize

import (
	"fmt"
	"strings"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Violation is one detected protocol or memory-model failure. Coherence
// violations (single-writer, stale-read, lost-writeback, no-grant,
// version-regress) are recorded as they fire; race reports are collected and
// filtered against the inferred synchronisation addresses at the end of the
// run.
type Violation struct {
	// Kind classifies the violation: "single-writer", "stale-read",
	// "lost-writeback", "no-grant", "version-regress" or "race".
	Kind string
	// At is the virtual time the violation was detected.
	At sim.Time
	// Node is the kernel the violating action ran on (-1 if not applicable).
	Node int
	// GID/VPN identify the page involved.
	GID int64
	VPN mem.VPN
	// Detail is the human-readable description.
	Detail string
	// Events is the page's protocol history (grants, revokes) from the
	// attached trace buffer, oldest first.
	Events []trace.Event
}

// Error makes *Violation usable as a panic value that the engine's process
// recovery turns into a run failure.
func (v *Violation) Error() string {
	return fmt.Sprintf("sanitize: %s violation at %v on k%d: %s", v.Kind, v.At, v.Node, v.Detail)
}

// String renders the violation with its attached protocol history.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s violation at %v on k%d: %s", v.Kind, v.At, v.Node, v.Detail)
	if len(v.Events) > 0 {
		fmt.Fprintf(&b, "\n  page history (%s):", pageToken(v.GID, v.VPN))
		for _, ev := range v.Events {
			fmt.Fprintf(&b, "\n    %s", ev)
		}
	}
	return b.String()
}

// pageToken is the stable identifier the checker embeds in every trace
// event detail so a violation can pull the owning events back out of the
// shared buffer.
func pageToken(gid int64, vpn mem.VPN) string {
	return fmt.Sprintf("g%d/p%#x", gid, uint64(vpn))
}
