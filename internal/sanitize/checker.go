// Package sanitize is the simulator's dynamic checking arm: a coherence
// sanitizer and happens-before race detector for the replicated-kernel DSM
// protocol. It shadows every page grant, revoke and access the vm layer
// performs, maintains vector clocks over the engine's scheduling and
// message edges, and reports violations with the owning trace events
// attached. Nothing here affects protocol behaviour: detached, the hooks
// cost one nil-check; attached, the checker only observes.
//
// See DESIGN.md §"Memory-model checking" for the model and cmd/popcornmc
// for seeded schedule exploration built on top.
package sanitize

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rights is the copy a kernel may legally hold of a page.
type rights uint8

const (
	rRead rights = 1 << iota
	rWrite
)

type pageKey struct {
	gid int64
	vpn mem.VPN
}

// accessor is the last-writer / last-reader shadow state of one page plus
// the sanitizer's authoritative copy of its content.
type pageShadow struct {
	// holders mirrors the directory: which kernels may hold this page and
	// with what rights. Maintained from the origin's grant decisions and
	// the revoked kernels' invalidation acks.
	holders map[msg.NodeID]rights
	// value is the last value written anywhere; valueKnown gates the
	// stale-read comparison until the first grant or write defines it.
	value      int64
	valueKnown bool

	// Race-detector shadow: the last write epoch and the read epochs since.
	lastWrite     epoch
	lastWriteName string
	readers       map[int64]epoch
	readerNames   map[int64]string
}

type msgKey struct {
	from, to msg.NodeID
	seq      uint64
	reply    bool
}

// Config tunes a Checker.
type Config struct {
	// Trace, when set, receives san.* protocol events and is mined for the
	// page history attached to violations.
	//popcornvet:allow kernlocal the checker is the cross-kernel observer by design; it runs in the serialised global-lane phase (DESIGN.md §15)
	Trace *trace.Buffer
	// FailFast makes coherence violations panic in the offending proc
	// (unwound by the engine into a run failure) instead of only being
	// recorded. Race reports are never fail-fast: they are filtered against
	// inferred synchronisation addresses at the end of the run.
	FailFast bool
	// MaxEvents caps the page history attached per violation (default 12).
	MaxEvents int
}

// Checker is the dynamic protocol checker. Wire one in with
// Engine.SetProcObserver, Fabric.SetObserver and each service's
// AttachChecker (core.OS.AttachSanitizer does all of it). All methods run
// on the engine loop; the Checker is not safe for use from other
// goroutines.
type Checker struct {
	e   sim.Engine
	cfg Config

	pages  map[pageKey]*pageShadow
	procs  map[int64]VC
	msgs   map[msgKey]VC
	locks  map[any]VC
	syncVC map[pageKey]VC
	// syncAddrs are addresses used with atomics or futexes: accesses to
	// them synchronise instead of racing.
	syncAddrs map[pageKey]bool
	// layout is the per-(kernel, group) high-water layout version.
	layout map[struct {
		node msg.NodeID
		gid  int64
	}]uint64

	// dead marks crashed kernels between NodeCrashed and NodeHealed:
	// grants addressed to them never install (the reply dies with the
	// wire), so recording them as holders would plant phantoms the crash
	// sweep has already run too early to clear.
	dead map[msg.NodeID]bool

	violations []*Violation
	candidates map[pageKey]*Violation
}

// New returns a checker bound to e.
func New(e sim.Engine, cfg Config) *Checker {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 12
	}
	return &Checker{
		e:         e,
		cfg:       cfg,
		pages:     make(map[pageKey]*pageShadow),
		procs:     make(map[int64]VC),
		msgs:      make(map[msgKey]VC),
		locks:     make(map[any]VC),
		syncVC:    make(map[pageKey]VC),
		syncAddrs: make(map[pageKey]bool),
		dead:      make(map[msg.NodeID]bool),
		layout: make(map[struct {
			node msg.NodeID
			gid  int64
		}]uint64),
		candidates: make(map[pageKey]*Violation),
	}
}

// Trace returns the trace buffer the checker records into (may be nil).
func (c *Checker) Trace() *trace.Buffer { return c.cfg.Trace }

// Violations returns the coherence violations recorded so far.
func (c *Checker) Violations() []*Violation { return c.violations }

// Races returns the race reports that survive synchronisation-address
// filtering: a candidate on a page later used with atomics or futexes is
// discarded, because accesses to synchronisation words are ordered by the
// protocol itself (a barrier's spin-read of its sense word is not a race).
// Call it after the run completes.
func (c *Checker) Races() []*Violation {
	var out []*Violation
	for k, v := range c.candidates {
		if !c.syncAddrs[k] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Detail < out[j].Detail
	})
	return out
}

// Report renders every violation and surviving race, or "" if clean.
func (c *Checker) Report() string {
	var b strings.Builder
	for _, v := range c.violations {
		fmt.Fprintf(&b, "%s\n", v)
	}
	for _, v := range c.Races() {
		fmt.Fprintf(&b, "%s\n", v)
	}
	return b.String()
}

func (c *Checker) shadow(k pageKey) *pageShadow {
	sh, ok := c.pages[k]
	if !ok {
		sh = &pageShadow{
			holders:     make(map[msg.NodeID]rights),
			readers:     make(map[int64]epoch),
			readerNames: make(map[int64]string),
		}
		c.pages[k] = sh
	}
	return sh
}

// vc returns p's clock, creating it at (p: 1) on first sight.
func (c *Checker) vc(p *sim.Proc) VC {
	v, ok := c.procs[p.ID()]
	if !ok {
		v = VC{p.ID(): 1}
		c.procs[p.ID()] = v
	}
	return v
}

func (c *Checker) traceEvent(kind string, node msg.NodeID, gid int64, vpn mem.VPN, format string, args ...any) {
	if c.cfg.Trace == nil {
		return
	}
	c.cfg.Trace.Add(trace.Event{
		At: c.e.Now(), Kind: kind, Node: int(node),
		Detail: pageToken(gid, vpn) + " " + fmt.Sprintf(format, args...),
	})
}

// violate records a coherence violation, attaches the page's protocol
// history, and (under FailFast) panics in the offending proc.
func (c *Checker) violate(kind string, node msg.NodeID, gid int64, vpn mem.VPN, format string, args ...any) {
	v := &Violation{
		Kind: kind, At: c.e.Now(), Node: int(node),
		GID: gid, VPN: vpn,
		Detail: fmt.Sprintf(format, args...),
		Events: c.pageHistory(gid, vpn),
	}
	//popcornvet:bounded violations fail the run; a healthy execution never grows this list
	c.violations = append(c.violations, v)
	if c.cfg.Trace != nil {
		c.cfg.Trace.Add(trace.Event{
			At: v.At, Kind: "san.violation", Node: v.Node,
			Detail: pageToken(gid, vpn) + " " + kind + ": " + v.Detail,
		})
	}
	if c.cfg.FailFast {
		panic(v)
	}
}

// pageHistory pulls the page's san.* events out of the shared trace buffer.
func (c *Checker) pageHistory(gid int64, vpn mem.VPN) []trace.Event {
	if c.cfg.Trace == nil {
		return nil
	}
	token := pageToken(gid, vpn) + " "
	var out []trace.Event
	for _, ev := range c.cfg.Trace.Events() {
		if strings.HasPrefix(ev.Kind, "san.") && strings.HasPrefix(ev.Detail, token) {
			out = append(out, ev)
		}
	}
	if len(out) > c.cfg.MaxEvents {
		out = out[len(out)-c.cfg.MaxEvents:]
	}
	return out
}

// candidate records a possible race on k; the first report per page wins,
// and the decision whether it is real is deferred to Races().
func (c *Checker) candidate(k pageKey, node msg.NodeID, format string, args ...any) {
	if _, dup := c.candidates[k]; dup {
		return
	}
	c.candidates[k] = &Violation{
		Kind: "race", At: c.e.Now(), Node: int(node),
		GID: k.gid, VPN: k.vpn,
		Detail: fmt.Sprintf(format, args...),
		Events: c.pageHistory(k.gid, k.vpn),
	}
}

// ---- sim.ProcObserver ------------------------------------------------

// ProcStarted gives the child the parent's view: spawn is a release/acquire
// pair.
func (c *Checker) ProcStarted(parent, child *sim.Proc) {
	if parent == nil {
		return
	}
	pv := c.vc(parent)
	pv.tick(parent.ID())
	cv := pv.clone()
	cv.tick(child.ID())
	c.procs[child.ID()] = cv
}

// ProcWoken is the wake-graph edge: whoever made a blocked proc runnable
// (mutex handoff, cond signal, futex wake, RPC completion) happens-before
// the proc's next step.
func (c *Checker) ProcWoken(waker, woken *sim.Proc) {
	if waker == nil {
		return
	}
	wv := c.vc(waker)
	wv.tick(waker.ID())
	c.vc(woken).join(wv)
}

// ProcFinished drops the proc's clock; recorded epochs stay valid because
// pids are never reused.
func (c *Checker) ProcFinished(p *sim.Proc) {
	delete(c.procs, p.ID())
}

// SyncAcquire/SyncRelease order critical sections on the same sim lock.
func (c *Checker) SyncAcquire(p *sim.Proc, key any) {
	if lv, ok := c.locks[key]; ok {
		c.vc(p).join(lv)
	}
}

func (c *Checker) SyncRelease(p *sim.Proc, key any) {
	pv := c.vc(p)
	pv.tick(p.ID())
	lv, ok := c.locks[key]
	if !ok {
		lv = VC{}
		c.locks[key] = lv
	}
	lv.join(pv)
}

// ---- msg.Observer ----------------------------------------------------

// MsgSent snapshots the sender's clock onto the message.
func (c *Checker) MsgSent(p *sim.Proc, m *msg.Message) {
	pv := c.vc(p)
	pv.tick(p.ID())
	c.msgs[msgKey{m.From, m.To, m.Seq, m.IsReply}] = pv.clone()
}

// MsgDelivered joins the message's clock into the receiving proc — the
// handler proc for requests, the RPC waiter for replies.
func (c *Checker) MsgDelivered(p *sim.Proc, m *msg.Message) {
	k := msgKey{m.From, m.To, m.Seq, m.IsReply}
	if mv, ok := c.msgs[k]; ok {
		c.vc(p).join(mv)
		delete(c.msgs, k)
	}
}

// NodeCrashed forgets a crashed kernel's holdings: every page copy it held
// vanishes with it, and a page it held writable loses its known value (the
// dead kernel's un-written-back stores are gone, so the next grant after
// ownership reclaim defines the value afresh). In-flight message clocks to
// or from the dead kernel are dropped — those messages will never deliver.
func (c *Checker) NodeCrashed(node msg.NodeID) {
	if c == nil {
		return
	}
	c.dead[node] = true
	keys := make([]pageKey, 0, len(c.pages))
	for k := range c.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].gid != keys[j].gid {
			return keys[i].gid < keys[j].gid
		}
		return keys[i].vpn < keys[j].vpn
	})
	for _, k := range keys {
		sh := c.pages[k]
		r, held := sh.holders[node]
		if !held {
			continue
		}
		delete(sh.holders, node)
		if r&rWrite != 0 {
			sh.valueKnown = false
		}
		c.traceEvent("san.crash-reclaim", node, k.gid, k.vpn, "k%d died holding rights=%d", node, r)
	}
	for k := range c.msgs {
		if k.from == node || k.to == node {
			delete(c.msgs, k)
		}
	}
}

// NodeHealed marks a rebooted kernel live again. The fresh incarnation
// boots with no page copies (NodeCrashed forgot the old ones), so grants
// to it are real again from here on.
func (c *Checker) NodeHealed(node msg.NodeID) {
	if c == nil {
		return
	}
	delete(c.dead, node)
}

// ---- coherence hooks (called by internal/vm) -------------------------

// Grant records the origin's decision to hand to a copy of (gid, vpn).
// fresh means the grant ships page content (value is meaningful); a
// have-copy re-grant does not. Exclusive grants while any other kernel
// holds a copy, shared grants while a writer holds one, and grants shipping
// a value different from the sanitizer's shadow all fail.
func (c *Checker) Grant(p *sim.Proc, gid int64, vpn mem.VPN, to msg.NodeID, exclusive, fresh bool, value int64) {
	if c == nil {
		return
	}
	k := pageKey{gid, vpn}
	sh := c.shadow(k)
	for n, r := range sh.holders {
		if n == to {
			continue
		}
		if exclusive {
			c.violate("single-writer", to, gid, vpn,
				"exclusive grant of %s to k%d while k%d still holds a copy (rights=%d)",
				pageToken(gid, vpn), to, n, r)
		} else if r&rWrite != 0 {
			c.violate("single-writer", to, gid, vpn,
				"shared grant of %s to k%d while k%d holds the page writable",
				pageToken(gid, vpn), to, n)
		}
	}
	if c.dead[to] {
		// The grantee died while its request was being served: the reply
		// commits to a deleted wire and the copy is never installed. The
		// crash sweep already ran, so recording the holder here would leave
		// a phantom copy that blocks every later exclusive grant.
		c.traceEvent("san.grant-dead", to, gid, vpn, "grant to dead k%d never installs; not recorded", to)
		return
	}
	if fresh {
		if sh.valueKnown && value != sh.value {
			c.violate("stale-read", to, gid, vpn,
				"grant of %s to k%d carries stale value %d; last write was %d",
				pageToken(gid, vpn), to, value, sh.value)
		}
		sh.value = value
		sh.valueKnown = true
	}
	if exclusive {
		sh.holders[to] = rRead | rWrite
	} else {
		sh.holders[to] |= rRead
	}
	mode := "shared"
	if exclusive {
		mode = "excl"
	}
	c.traceEvent("san.grant", to, gid, vpn, "%s to k%d fresh=%v val=%d", mode, to, fresh, value)
}

// Revoked records that the origin collected kernel at's invalidation ack
// (downgrade strips write; full invalidation drops the copy). A revoked
// copy whose written-back value disagrees with the shadow means a write was
// lost. The call is made at the origin on ack receipt, not at the revokee:
// a revokee that dies with its ack in flight never commits here, so its
// shadow holding stays writable until NodeCrashed forgets it — which also
// un-defines the value, accepting the directory's degraded older copy.
func (c *Checker) Revoked(p *sim.Proc, gid int64, vpn mem.VPN, at msg.NodeID, downgrade, hadCopy bool, value int64) {
	if c == nil {
		return
	}
	k := pageKey{gid, vpn}
	sh := c.shadow(k)
	if hadCopy && sh.valueKnown && value != sh.value {
		c.violate("lost-writeback", at, gid, vpn,
			"invalidation ack from k%d writes back %d, sanitizer shadow has %d",
			at, value, sh.value)
	}
	if downgrade && hadCopy {
		if r, ok := sh.holders[at]; ok {
			sh.holders[at] = r &^ rWrite
		}
	} else {
		// A full invalidation drops the copy. So does a downgrade ack
		// without a copy: the kernel had nothing to keep — its grant was
		// still in flight and will be discarded as stale — and the
		// directory likewise drops it from the sharer set.
		delete(sh.holders, at)
	}
	c.traceEvent("san.revoke", at, gid, vpn, "at k%d downgrade=%v hadCopy=%v val=%d", at, downgrade, hadCopy, value)
}

// Unmapped forgets the shadow state for pages in [lo, hi): the origin
// removed them from the address space.
func (c *Checker) Unmapped(gid int64, lo, hi mem.VPN) {
	if c == nil {
		return
	}
	for vpn := lo; vpn < hi; vpn++ {
		k := pageKey{gid, vpn}
		delete(c.pages, k)
		delete(c.candidates, k)
		delete(c.syncVC, k)
		delete(c.syncAddrs, k)
	}
}

// LayoutApplied checks that a kernel's applied layout version for gid never
// goes backwards.
func (c *Checker) LayoutApplied(node msg.NodeID, gid int64, version uint64) {
	if c == nil {
		return
	}
	k := struct {
		node msg.NodeID
		gid  int64
	}{node, gid}
	if prev := c.layout[k]; version < prev {
		c.violate("version-regress", node, gid, 0,
			"layout version on k%d went backwards: %d after %d", node, version, prev)
		return
	}
	c.layout[k] = version
}

// ---- access hooks (called at vm's linearisation point) ---------------

// AccessRead checks a committed read: the kernel must hold a copy and the
// observed value must match the shadow (a mismatch means the kernel read a
// version that an acked invalidation should have destroyed).
func (c *Checker) AccessRead(p *sim.Proc, node msg.NodeID, gid int64, vpn mem.VPN, value int64) {
	if c == nil {
		return
	}
	k := pageKey{gid, vpn}
	sh := c.shadow(k)
	if sh.holders[node]&rRead == 0 {
		c.violate("no-grant", node, gid, vpn,
			"k%d read %s without a granted copy", node, pageToken(gid, vpn))
	}
	if sh.valueKnown && value != sh.value {
		c.violate("stale-read", node, gid, vpn,
			"k%d read %d from %s; last write was %d (stale copy survived invalidation)",
			node, value, pageToken(gid, vpn), sh.value)
	}
	c.raceRead(p, node, k, sh)
}

// AccessWrite checks a committed write: the kernel must hold the page
// writable and no other kernel may.
func (c *Checker) AccessWrite(p *sim.Proc, node msg.NodeID, gid int64, vpn mem.VPN, value int64) {
	if c == nil {
		return
	}
	k := pageKey{gid, vpn}
	sh := c.shadow(k)
	c.checkWriteRights(node, gid, vpn, sh)
	sh.value = value
	sh.valueKnown = true
	c.raceWrite(p, node, k, sh)
}

// AccessRMW checks a committed atomic (CompareAndSwap, FetchAdd): write
// rights are required even when the CAS fails, the observed old value must
// match the shadow, and the address becomes a synchronisation word — its
// accesses order instead of race.
func (c *Checker) AccessRMW(p *sim.Proc, node msg.NodeID, gid int64, vpn mem.VPN, old, new int64, wrote bool) {
	if c == nil {
		return
	}
	k := pageKey{gid, vpn}
	sh := c.shadow(k)
	c.checkWriteRights(node, gid, vpn, sh)
	if sh.valueKnown && old != sh.value {
		c.violate("stale-read", node, gid, vpn,
			"k%d atomic read %d from %s; last write was %d (stale copy survived invalidation)",
			node, old, pageToken(gid, vpn), sh.value)
	}
	if wrote {
		sh.value = new
		sh.valueKnown = true
	}
	c.syncAccess(p, k)
}

func (c *Checker) checkWriteRights(node msg.NodeID, gid int64, vpn mem.VPN, sh *pageShadow) {
	if sh.holders[node]&rWrite == 0 {
		c.violate("single-writer", node, gid, vpn,
			"k%d wrote %s without an exclusive grant", node, pageToken(gid, vpn))
	}
	// Sorted so a multi-holder violation reports the same kernel first on
	// every run.
	holders := make([]msg.NodeID, 0, len(sh.holders))
	for n := range sh.holders {
		holders = append(holders, n)
	}
	sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
	for _, n := range holders {
		if n != node && sh.holders[n]&rWrite != 0 {
			c.violate("single-writer", node, gid, vpn,
				"k%d wrote %s while k%d also holds it writable", node, pageToken(gid, vpn), n)
		}
	}
}

// SyncOp marks an address as a synchronisation word (futex wait/wake/
// requeue target) and orders the calling proc through it.
func (c *Checker) SyncOp(p *sim.Proc, gid int64, vpn mem.VPN) {
	if c == nil {
		return
	}
	c.syncAccess(p, pageKey{gid, vpn})
}

// syncAccess gives an access to a synchronisation word acquire+release
// semantics on the word's clock.
func (c *Checker) syncAccess(p *sim.Proc, k pageKey) {
	c.syncAddrs[k] = true
	pv := c.vc(p)
	av, ok := c.syncVC[k]
	if !ok {
		av = VC{}
		c.syncVC[k] = av
	}
	pv.join(av)
	pv.tick(p.ID())
	av.join(pv)
}

func (c *Checker) raceRead(p *sim.Proc, node msg.NodeID, k pageKey, sh *pageShadow) {
	if c.syncAddrs[k] {
		c.syncAccess(p, k)
		return
	}
	pv := c.vc(p)
	if sh.lastWrite.pid != p.ID() && !pv.covers(sh.lastWrite) {
		c.candidate(k, node, "unsynchronized read of %s by %q on k%d conflicts with write by %q",
			pageToken(k.gid, k.vpn), p.Name(), node, sh.lastWriteName)
	}
	sh.readers[p.ID()] = epoch{pid: p.ID(), t: pv[p.ID()]}
	sh.readerNames[p.ID()] = p.Name()
}

func (c *Checker) raceWrite(p *sim.Proc, node msg.NodeID, k pageKey, sh *pageShadow) {
	if c.syncAddrs[k] {
		c.syncAccess(p, k)
		return
	}
	pv := c.vc(p)
	if sh.lastWrite.pid != p.ID() && !pv.covers(sh.lastWrite) {
		c.candidate(k, node, "unsynchronized write of %s by %q on k%d conflicts with write by %q",
			pageToken(k.gid, k.vpn), p.Name(), node, sh.lastWriteName)
	}
	// Sorted so a write conflicting with several readers reports them in
	// the same order on every run.
	pids := make([]int64, 0, len(sh.readers))
	for pid := range sh.readers {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		if pid != p.ID() && !pv.covers(sh.readers[pid]) {
			c.candidate(k, node, "unsynchronized write of %s by %q on k%d conflicts with read by %q",
				pageToken(k.gid, k.vpn), p.Name(), node, sh.readerNames[pid])
		}
	}
	sh.lastWrite = epoch{pid: p.ID(), t: pv[p.ID()]}
	sh.lastWriteName = p.Name()
	sh.readers = make(map[int64]epoch)
	sh.readerNames = make(map[int64]string)
}

// ---- threadgroup hooks -----------------------------------------------

// ThreadMigrated advances the migrating proc's clock across the kernel
// boundary and records the hop for reports.
func (c *Checker) ThreadMigrated(p *sim.Proc, gid int64, id int64, from, to msg.NodeID) {
	if c == nil {
		return
	}
	c.vc(p).tick(p.ID())
	if c.cfg.Trace != nil {
		c.cfg.Trace.Add(trace.Event{
			At: c.e.Now(), Kind: "san.migrate", Node: int(to),
			Detail: fmt.Sprintf("g%d task %d k%d -> k%d", gid, id, from, to),
		})
	}
}

// ThreadExited advances the exiting proc's clock; its exit notification
// message carries the final view to the origin.
func (c *Checker) ThreadExited(p *sim.Proc, gid int64, id int64, node msg.NodeID) {
	if c == nil {
		return
	}
	c.vc(p).tick(p.ID())
}
