package sanitize

// VC is a vector clock: proc id -> logical time. The checker keeps one per
// live proc, one per in-flight message, one per lock, and one per inferred
// synchronisation address; happens-before is the component-wise order.
type VC map[int64]uint64

func (v VC) tick(pid int64) { v[pid]++ }

// join folds o into v (component-wise max): v becomes the least clock that
// happens-after both.
func (v VC) join(o VC) {
	for pid, t := range o {
		if t > v[pid] {
			v[pid] = t
		}
	}
}

func (v VC) clone() VC {
	c := make(VC, len(v))
	for pid, t := range v {
		c[pid] = t
	}
	return c
}

// epoch is one (proc, time) access record — FastTrack-style: most accesses
// need only their last epoch, not a full clock.
type epoch struct {
	pid int64
	t   uint64
}

// covers reports whether the epoch happened-before the clock v.
func (v VC) covers(e epoch) bool { return e.t == 0 || v[e.pid] >= e.t }
