package repro_test

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/smp"
	"repro/internal/workload"
)

// Each table/figure of the evaluation has a benchmark that regenerates it
// at quick scale per iteration. Simulated results are in virtual time and
// deterministic; the wall-clock ns/op these report is the cost of
// regenerating the experiment, while the workload-level benchmarks below
// additionally report virtual-time metrics via ReportMetric.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(bench.Quick); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkT1MessageRoundTrip(b *testing.B)   { benchExperiment(b, "T1") }
func BenchmarkT2MigrationBreakdown(b *testing.B) { benchExperiment(b, "T2") }
func BenchmarkT3ThreadCreate(b *testing.B)       { benchExperiment(b, "T3") }
func BenchmarkT4SyscallOverhead(b *testing.B)    { benchExperiment(b, "T4") }
func BenchmarkF1ThreadBomb(b *testing.B)         { benchExperiment(b, "F1") }
func BenchmarkF2PageFault(b *testing.B)          { benchExperiment(b, "F2") }
func BenchmarkF3VMAPropagation(b *testing.B)     { benchExperiment(b, "F3") }
func BenchmarkF4MmapStorm(b *testing.B)          { benchExperiment(b, "F4") }
func BenchmarkF5FutexChain(b *testing.B)         { benchExperiment(b, "F5") }
func BenchmarkF5SharedFutex(b *testing.B)        { benchExperiment(b, "F5b") }
func BenchmarkF6FaultSweep(b *testing.B)         { benchExperiment(b, "F6") }
func BenchmarkF7ComputeKernels(b *testing.B)     { benchExperiment(b, "F7") }
func BenchmarkF8MigrationBenefit(b *testing.B)   { benchExperiment(b, "F8") }
func BenchmarkF9KVStore(b *testing.B)            { benchExperiment(b, "F9") }

func BenchmarkAblationVMAOrigin(b *testing.B)     { benchExperiment(b, "D1") }
func BenchmarkAblationDummyThread(b *testing.B)   { benchExperiment(b, "D2") }
func BenchmarkAblationKernelCount(b *testing.B)   { benchExperiment(b, "D3") }
func BenchmarkAblationSlotSize(b *testing.B)      { benchExperiment(b, "D4") }
func BenchmarkAblationPageOwnership(b *testing.B) { benchExperiment(b, "D5") }

// Workload-level benchmarks: one fresh machine per iteration, with the
// virtual per-operation latency reported as a custom metric. These are the
// numbers to compare against the paper (shape, not absolute).

func bootPopcornBench(b *testing.B) *core.OS {
	b.Helper()
	topo := hw.Topology{Cores: 64, NUMANodes: 2}
	machine, err := hw.NewMachine(topo, hw.DefaultCostModel())
	if err != nil {
		b.Fatal(err)
	}
	cc := kernel.DefaultClusterConfig(machine)
	cc.Kernels = 8
	o, err := core.Boot(core.Config{Topology: topo, Cluster: &cc})
	if err != nil {
		b.Fatal(err)
	}
	return o
}

func reportVirtual(b *testing.B, res workload.Result) {
	b.Helper()
	b.ReportMetric(float64(res.PerOp().Nanoseconds()), "virt-ns/op")
	b.ReportMetric(res.Throughput()/1000, "virt-ops/ms")
}

func BenchmarkWorkloadThreadBombPopcorn(b *testing.B) {
	var last workload.Result
	for i := 0; i < b.N; i++ {
		o := bootPopcornBench(b)
		res, err := workload.ThreadBomb(o, workload.ThreadBombSpec{Spawners: 32, Children: 8})
		o.Close()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportVirtual(b, last)
}

func BenchmarkWorkloadThreadBombSMP(b *testing.B) {
	var last workload.Result
	for i := 0; i < b.N; i++ {
		o, err := smp.Boot(smp.Config{Topology: hw.Topology{Cores: 64, NUMANodes: 2}})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.ThreadBomb(o, workload.ThreadBombSpec{Spawners: 32, Children: 8})
		o.Close()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportVirtual(b, last)
}

func BenchmarkWorkloadMmapStormPopcorn(b *testing.B) {
	var last workload.Result
	for i := 0; i < b.N; i++ {
		o := bootPopcornBench(b)
		res, err := workload.MmapStorm(o, workload.MmapStormSpec{Threads: 32, Iters: 4, Pages: 4})
		o.Close()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportVirtual(b, last)
}

func BenchmarkWorkloadMmapStormSMP(b *testing.B) {
	var last workload.Result
	for i := 0; i < b.N; i++ {
		o, err := smp.Boot(smp.Config{Topology: hw.Topology{Cores: 64, NUMANodes: 2}})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.MmapStorm(o, workload.MmapStormSpec{Threads: 32, Iters: 4, Pages: 4})
		o.Close()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportVirtual(b, last)
}

func BenchmarkWorkloadMigration(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		o := bootPopcornBench(b)
		res, err := workload.MigrationBenefit(o, workload.MigrationBenefitSpec{Pages: 32, Rounds: 1, Migrate: true})
		if err != nil {
			o.Close()
			b.Fatal(err)
		}
		total = o.Metrics().Histogram("tg.migrate.total").Mean()
		_ = res
		o.Close()
	}
	b.ReportMetric(float64(total.Nanoseconds()), "virt-ns/migration")
}
